open Test_util
module Dag = Prbp.Dag
module MP = Prbp.Minpart
module Segment = Prbp.Bounds.Segment

(* Collapse a verdict to the classic [int option] shape, treating a
   truncated search as a test failure (these instances are tiny). *)
let min_of what = function
  | MP.Minimum { classes; _ } -> Some classes
  | MP.No_partition -> None
  | MP.Truncated reason ->
      Alcotest.failf "%s: search truncated (%s)" what
        (Prbp.Solver.reason_label reason)

let min_exn what v =
  match min_of what v with
  | Some k -> k
  | None -> Alcotest.failf "%s: expected a partition to exist" what

(* Every Minimum verdict must carry a witness with exactly [classes]
   blocks that re-validates through the exact checkers. *)
let witness_ok flavor g ~s what = function
  | MP.Minimum { classes; witness } -> (
      check_int (what ^ ": witness size") classes (Array.length witness);
      match Segment.of_minpart flavor g ~s witness with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: witness rejected: %s" what e)
  | MP.No_partition | MP.Truncated _ -> ()

let test_ideals_path () =
  (* ideals of a path are its prefixes, plus the empty set *)
  match MP.ideals (Prbp.Graphs.Basic.path 5) with
  | Ok n -> check_int "path(5)" 6 n
  | Error _ -> Alcotest.fail "path(5) ideal count truncated"

let test_ideals_diamond () =
  (* ∅,{0},{01},{02},{012},{0123} *)
  match MP.ideals (Prbp.Graphs.Basic.diamond ()) with
  | Ok n -> check_int "diamond" 6 n
  | Error _ -> Alcotest.fail "diamond ideal count truncated"

let test_single_class_cases () =
  let d = Prbp.Graphs.Basic.diamond () in
  check_int "diamond s=2" 1 (min_exn "diamond" (MP.spartition d ~s:2));
  check_int "dominator version" 1
    (min_exn "diamond dom" (MP.dominator_partition d ~s:2));
  let p = Prbp.Graphs.Basic.path 6 in
  check_int "path s=1" 1 (min_exn "path" (MP.spartition p ~s:1))

let test_fan_out_terminal_pressure () =
  (* 5 sinks, classes limited to terminal size 2: MIN_part = 3 while
     MIN_dom = 1 (Definition 6.6 drops the terminal condition) *)
  let g = Prbp.Graphs.Basic.fan_out 5 in
  check_int "MIN_part" 3 (min_exn "fan-out part" (MP.spartition g ~s:2));
  check_int "MIN_dom" 1 (min_exn "fan-out dom" (MP.dominator_partition g ~s:2))

let test_edge_partition_diamond () =
  (* the whole diamond edge set is already a valid class at S = 1: its
     edge-dominator is {source} and its edge-terminal is {sink} *)
  let g = Prbp.Graphs.Basic.diamond () in
  check_int "MIN_edge(1)" 1 (min_exn "diamond edge" (MP.edge_partition g ~s:1));
  (* fan-out: every out-edge ends at a distinct sink, so edge-terminal
     pressure forces ⌈5/2⌉ classes at S = 2 *)
  let f = Prbp.Graphs.Basic.fan_out 5 in
  check_int "fan-out MIN_edge(2)" 3
    (min_exn "fan-out edge s=2" (MP.edge_partition f ~s:2));
  check_int "fan-out MIN_edge(5)" 1
    (min_exn "fan-out edge s=5" (MP.edge_partition f ~s:5))

let test_infeasible_s0 () =
  let g = Prbp.Graphs.Basic.diamond () in
  check_true "s=0 has no partition" (MP.spartition g ~s:0 = MP.No_partition)

let test_witnesses_revalidate () =
  (* whatever DAG the search is given, a Minimum verdict's witness must
     pass the corresponding exact checker with the reported class count *)
  List.iter
    (fun g ->
      if Dag.n_nodes g <= 10 then
        List.iter
          (fun s ->
            witness_ok Segment.Spartition g ~s "MIN_part" (MP.spartition g ~s);
            witness_ok Segment.Dominator g ~s "MIN_dom"
              (MP.dominator_partition g ~s);
            witness_ok Segment.Edge g ~s "MIN_edge" (MP.edge_partition g ~s))
          [ 2; 3; 4 ])
    (Lazy.force random_dags)

let test_min_dom_at_most_min_part () =
  List.iter
    (fun g ->
      if Dag.n_nodes g <= 10 then
        List.iter
          (fun s ->
            match
              ( min_of "MIN_dom" (MP.dominator_partition g ~s),
                min_of "MIN_part" (MP.spartition g ~s) )
            with
            | Some d, Some p -> check_true "MIN_dom <= MIN_part" (d <= p)
            | _, None -> ()
            | None, Some _ -> Alcotest.fail "dom infeasible but part feasible")
          [ 2; 3; 4 ])
    (Lazy.force random_dags)

let test_greedy_upper_bounds_exact () =
  (* the greedy construction can never beat the exact minimum *)
  List.iter
    (fun g ->
      if Dag.n_nodes g <= 9 then begin
        let s = 3 in
        match min_of "MIN_part" (MP.spartition g ~s) with
        | Some k ->
            let greedy = Array.length (Prbp.Spart.greedy_spartition g ~s) in
            check_true "greedy >= exact" (greedy >= k)
        | None -> ()
      end)
    (Lazy.force random_dags)

let test_theorem_65_exact () =
  (* r·(MIN_edge(2r) − 1) <= OPT_PRBP, with MIN computed exactly *)
  let cases =
    [
      ("fig1", fst (Prbp.Graphs.Fig1.full ()), 2);
      ("diamond", Prbp.Graphs.Basic.diamond (), 2);
      ("tree(2,3)", (Prbp.Graphs.Tree.make ~k:2 ~depth:3).Prbp.Graphs.Tree.dag, 3);
      ("pyramid(2)", Prbp.Graphs.Basic.pyramid 2, 2);
    ]
  in
  List.iter
    (fun (name, g, r) ->
      let opt = Test_util.opt_prbp (Prbp.Prbp_game.config ~r ()) g in
      let edge = MP.prbp_bound_edge g ~r in
      let dom = MP.prbp_bound_dom g ~r in
      check_true (name ^ ": edge bound sound") (edge <= opt);
      check_true (name ^ ": dom bound sound") (dom <= opt))
    cases

let test_hong_kung_exact () =
  (* r·(MIN_part(2r) − 1) <= OPT_RBP with exact MIN_part *)
  let cases =
    [
      ("fig1", fst (Prbp.Graphs.Fig1.full ()), 4);
      ("tree(2,3)", (Prbp.Graphs.Tree.make ~k:2 ~depth:3).Prbp.Graphs.Tree.dag, 3);
    ]
  in
  List.iter
    (fun (name, g, r) ->
      let opt = Test_util.opt_rbp (Prbp.Rbp.config ~r ()) g in
      check_true (name ^ ": HK bound sound") (MP.rbp_bound g ~r <= opt))
    cases

let test_extraction_respects_min () =
  (* any extracted partition has at least MIN classes *)
  let g, ids = Prbp.Graphs.Fig1.full () in
  let r = 4 in
  let moves = Prbp.Strategies.fig1_prbp ids in
  let extracted = Prbp.Extract.edge_partition_of_prbp ~r g moves in
  match min_of "MIN_edge" (MP.edge_partition g ~s:(2 * r)) with
  | Some k -> check_true "extracted >= MIN" (Array.length extracted >= k)
  | None -> Alcotest.fail "partition must exist"

let test_budget_truncates () =
  (* a starved state budget must surface as Truncated, not an exception,
     and the derived bounds must degrade to the sound 0 *)
  let l = Prbp.Graphs.Lemma54.make ~group_size:4 in
  let g = l.Prbp.Graphs.Lemma54.dag in
  let budget = Prbp.Solver.Budget.v ~max_states:50 ~check_every:1 () in
  check_true "ideals truncates" (Result.is_error (MP.ideals ~budget g));
  (match MP.spartition ~budget g ~s:4 with
  | MP.Truncated _ -> ()
  | MP.Minimum _ | MP.No_partition ->
      Alcotest.fail "expected Truncated under a 50-state budget");
  check_int "truncated bound is 0" 0 (MP.rbp_bound ~budget g ~r:2)

let test_deprecated_shim_raises () =
  let l = Prbp.Graphs.Lemma54.make ~group_size:4 in
  check_true "shim raises Too_large"
    (match
       (MP.n_ideals [@alert "-deprecated"]) ~max_ideals:50
         l.Prbp.Graphs.Lemma54.dag
     with
    | exception MP.Too_large _ -> true
    | _ -> false)

let suite =
  [
    ( "minpart",
      [
        case "ideal counts: path" test_ideals_path;
        case "ideal counts: diamond" test_ideals_diamond;
        case "single-class cases" test_single_class_cases;
        case "terminal pressure splits fan-out" test_fan_out_terminal_pressure;
        case "edge partition of the diamond" test_edge_partition_diamond;
        case "s=0 infeasible" test_infeasible_s0;
        case "witnesses re-validate" test_witnesses_revalidate;
        case "MIN_dom <= MIN_part" test_min_dom_at_most_min_part;
        case "greedy upper-bounds exact" test_greedy_upper_bounds_exact;
        case "Theorem 6.5/6.7 exact soundness" test_theorem_65_exact;
        case "Hong-Kung exact soundness" test_hong_kung_exact;
        case "extraction >= MIN" test_extraction_respects_min;
        case "budget truncates, bounds stay sound" test_budget_truncates;
        case "deprecated shim raises" test_deprecated_shim_raises;
      ] );
  ]

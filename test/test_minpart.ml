open Test_util
module Dag = Prbp.Dag
module MP = Prbp.Minpart

let min_exn = function
  | Some k -> k
  | None -> Alcotest.fail "expected a partition to exist"

let test_ideals_path () =
  (* ideals of a path are its prefixes, plus the empty set *)
  check_int "path(5)" 6 (MP.n_ideals (Prbp.Graphs.Basic.path 5))

let test_ideals_diamond () =
  (* ∅,{0},{01},{02},{012},{0123} *)
  check_int "diamond" 6 (MP.n_ideals (Prbp.Graphs.Basic.diamond ()))

let test_single_class_cases () =
  let d = Prbp.Graphs.Basic.diamond () in
  check_int "diamond s=2" 1 (min_exn (MP.min_spartition d ~s:2));
  check_int "dominator version" 1 (min_exn (MP.min_dominator_partition d ~s:2));
  let p = Prbp.Graphs.Basic.path 6 in
  check_int "path s=1" 1 (min_exn (MP.min_spartition p ~s:1))

let test_fan_out_terminal_pressure () =
  (* 5 sinks, classes limited to terminal size 2: MIN_part = 3 while
     MIN_dom = 1 (Definition 6.6 drops the terminal condition) *)
  let g = Prbp.Graphs.Basic.fan_out 5 in
  check_int "MIN_part" 3 (min_exn (MP.min_spartition g ~s:2));
  check_int "MIN_dom" 1 (min_exn (MP.min_dominator_partition g ~s:2))

let test_edge_partition_diamond () =
  (* the whole diamond edge set is already a valid class at S = 1: its
     edge-dominator is {source} and its edge-terminal is {sink} *)
  let g = Prbp.Graphs.Basic.diamond () in
  check_int "MIN_edge(1)" 1 (min_exn (MP.min_edge_partition g ~s:1));
  (* fan-out: every out-edge ends at a distinct sink, so edge-terminal
     pressure forces ⌈5/2⌉ classes at S = 2 *)
  let f = Prbp.Graphs.Basic.fan_out 5 in
  check_int "fan-out MIN_edge(2)" 3 (min_exn (MP.min_edge_partition f ~s:2));
  check_int "fan-out MIN_edge(5)" 1 (min_exn (MP.min_edge_partition f ~s:5))

let test_infeasible_s0 () =
  let g = Prbp.Graphs.Basic.diamond () in
  check_true "s=0 has no partition" (MP.min_spartition g ~s:0 = None)

let test_min_dom_at_most_min_part () =
  List.iter
    (fun g ->
      if Dag.n_nodes g <= 10 then
        List.iter
          (fun s ->
            match (MP.min_dominator_partition g ~s, MP.min_spartition g ~s) with
            | Some d, Some p -> check_true "MIN_dom <= MIN_part" (d <= p)
            | _, None -> ()
            | None, Some _ -> Alcotest.fail "dom infeasible but part feasible")
          [ 2; 3; 4 ])
    (Lazy.force random_dags)

let test_greedy_upper_bounds_exact () =
  (* the greedy construction can never beat the exact minimum *)
  List.iter
    (fun g ->
      if Dag.n_nodes g <= 9 then begin
        let s = 3 in
        match MP.min_spartition g ~s with
        | Some k ->
            let greedy = Array.length (Prbp.Spart.greedy_spartition g ~s) in
            check_true "greedy >= exact" (greedy >= k)
        | None -> ()
      end)
    (Lazy.force random_dags)

let test_theorem_65_exact () =
  (* r·(MIN_edge(2r) − 1) <= OPT_PRBP, with MIN computed exactly *)
  let cases =
    [
      ("fig1", fst (Prbp.Graphs.Fig1.full ()), 2);
      ("diamond", Prbp.Graphs.Basic.diamond (), 2);
      ("tree(2,3)", (Prbp.Graphs.Tree.make ~k:2 ~depth:3).Prbp.Graphs.Tree.dag, 3);
      ("pyramid(2)", Prbp.Graphs.Basic.pyramid 2, 2);
    ]
  in
  List.iter
    (fun (name, g, r) ->
      let opt = Test_util.opt_prbp (Prbp.Prbp_game.config ~r ()) g in
      let edge = MP.prbp_lower_bound_edge g ~r in
      let dom = MP.prbp_lower_bound_dom g ~r in
      check_true (name ^ ": edge bound sound") (edge <= opt);
      check_true (name ^ ": dom bound sound") (dom <= opt))
    cases

let test_hong_kung_exact () =
  (* r·(MIN_part(2r) − 1) <= OPT_RBP with exact MIN_part *)
  let cases =
    [
      ("fig1", fst (Prbp.Graphs.Fig1.full ()), 4);
      ("tree(2,3)", (Prbp.Graphs.Tree.make ~k:2 ~depth:3).Prbp.Graphs.Tree.dag, 3);
    ]
  in
  List.iter
    (fun (name, g, r) ->
      let opt = Test_util.opt_rbp (Prbp.Rbp.config ~r ()) g in
      check_true (name ^ ": HK bound sound") (MP.rbp_lower_bound g ~r <= opt))
    cases

let test_extraction_respects_min () =
  (* any extracted partition has at least MIN classes *)
  let g, ids = Prbp.Graphs.Fig1.full () in
  let r = 4 in
  let moves = Prbp.Strategies.fig1_prbp ids in
  let extracted = Prbp.Extract.edge_partition_of_prbp ~r g moves in
  match MP.min_edge_partition g ~s:(2 * r) with
  | Some k -> check_true "extracted >= MIN" (Array.length extracted >= k)
  | None -> Alcotest.fail "partition must exist"

let test_budget () =
  let l = Prbp.Graphs.Lemma54.make ~group_size:4 in
  check_true "budget raises"
    (match MP.n_ideals ~max_ideals:50 l.Prbp.Graphs.Lemma54.dag with
    | exception MP.Too_large _ -> true
    | _ -> false)

let suite =
  [
    ( "minpart",
      [
        case "ideal counts: path" test_ideals_path;
        case "ideal counts: diamond" test_ideals_diamond;
        case "single-class cases" test_single_class_cases;
        case "terminal pressure splits fan-out" test_fan_out_terminal_pressure;
        case "edge partition of the diamond" test_edge_partition_diamond;
        case "s=0 infeasible" test_infeasible_s0;
        case "MIN_dom <= MIN_part" test_min_dom_at_most_min_part;
        case "greedy upper-bounds exact" test_greedy_upper_bounds_exact;
        case "Theorem 6.5/6.7 exact soundness" test_theorem_65_exact;
        case "Hong-Kung exact soundness" test_hong_kung_exact;
        case "extraction >= MIN" test_extraction_respects_min;
        case "enumeration budget" test_budget;
      ] );
  ]

(* QCheck property suites over randomly generated DAGs: the invariants
   that quantify over "any DAG" or "any strategy" in the paper. *)
open Test_util
module Dag = Prbp.Dag

let gen_dag =
  QCheck.make
    ~print:(fun (seed, layers, width) ->
      Printf.sprintf "seed=%d layers=%d width=%d" seed layers width)
    QCheck.Gen.(
      triple (int_range 1 10_000) (int_range 2 4) (int_range 1 3))

let dag_of (seed, layers, width) =
  Prbp.Graphs.Random_dag.make ~seed ~layers ~width ~density:0.35
    ~max_in_degree:4 ()

let prop_heuristic_prbp_valid =
  qcase ~count:60 "PRBP heuristic yields valid complete pebblings" gen_dag
    (fun params ->
      let g = dag_of params in
      match
        Prbp.Prbp_game.check
          (Prbp.Prbp_game.config ~r:2 ())
          g
          (Prbp.Heuristic.prbp ~r:2 g)
      with
      | Ok c -> c >= Dag.trivial_cost g
      | Error _ -> false)

let prop_heuristic_rbp_valid =
  qcase ~count:60 "RBP heuristic yields valid complete pebblings" gen_dag
    (fun params ->
      let g = dag_of params in
      let r = Dag.max_in_degree g + 1 in
      match Prbp.Rbp.check (Prbp.Rbp.config ~r ()) g (Prbp.Heuristic.rbp ~r g) with
      | Ok c -> c >= Dag.trivial_cost g
      | Error _ -> false)

let prop_41_translation =
  qcase ~count:40 "Prop 4.1: RBP strategies translate cost-preserving"
    gen_dag (fun params ->
      let g = dag_of params in
      let r = Dag.max_in_degree g + 1 in
      let moves =
        Prbp.Rbp.normalize (Prbp.Rbp.config ~r ()) g (Prbp.Heuristic.rbp ~r g)
      in
      let c = match Prbp.Rbp.check (Prbp.Rbp.config ~r ()) g moves with
        | Ok c -> c
        | Error _ -> -1
      in
      c >= 0
      &&
      match
        Prbp.Prbp_game.check
          (Prbp.Prbp_game.config ~r ())
          g
          (Prbp.Move.rbp_to_prbp g moves)
      with
      | Ok c' -> c = c'
      | Error _ -> false)

let prop_lemma_64 =
  qcase ~count:40 "Lemma 6.4: traces extract to valid 2r-edge partitions"
    gen_dag (fun params ->
      let g = dag_of params in
      let r = 3 in
      let moves = Prbp.Heuristic.prbp ~r g in
      let cost =
        match Prbp.Prbp_game.check (Prbp.Prbp_game.config ~r ()) g moves with
        | Ok c -> c
        | Error _ -> -1
      in
      cost >= 0
      &&
      let cls = Prbp.Extract.edge_partition_of_prbp ~r g moves in
      let k = Array.length cls in
      (match Prbp.Spart.is_edge_partition g ~s:(2 * r) cls with
      | Ok () -> true
      | Error _ -> false)
      && r * k >= cost
      && cost >= r * (k - 1))

let prop_lemma_68 =
  qcase ~count:40 "Lemma 6.8: traces extract to valid 2r-dominator partitions"
    gen_dag (fun params ->
      let g = dag_of params in
      let r = 3 in
      let moves = Prbp.Heuristic.prbp ~r g in
      let cost =
        match Prbp.Prbp_game.check (Prbp.Prbp_game.config ~r ()) g moves with
        | Ok c -> c
        | Error _ -> -1
      in
      cost >= 0
      &&
      let cls = Prbp.Extract.dominator_partition_of_prbp ~r g moves in
      let k = Array.length cls in
      (match Prbp.Spart.is_dominator_partition g ~s:(2 * r) cls with
      | Ok () -> true
      | Error _ -> false)
      && r * k >= cost
      && cost >= r * (k - 1))

let prop_hong_kung =
  qcase ~count:40 "Hong-Kung: RBP traces extract to valid 2r-partitions"
    gen_dag (fun params ->
      let g = dag_of params in
      let r = Dag.max_in_degree g + 1 in
      let moves = Prbp.Heuristic.rbp ~r g in
      let cls = Prbp.Extract.hong_kung ~r g moves in
      match Prbp.Spart.is_spartition g ~s:(2 * r) cls with
      | Ok () -> true
      | Error _ -> false)

let prop_dominator_monotone =
  qcase ~count:60 "min dominator size is monotone under set inclusion"
    gen_dag (fun params ->
      let g = dag_of params in
      let n = Dag.n_nodes g in
      let small = Prbp.Bitset.of_list n [ n - 1 ] in
      let big = Prbp.Bitset.of_list n [ n - 1; n / 2 ] in
      Prbp.Dominator.min_dominator_size g small
      <= Prbp.Dominator.min_dominator_size g big)

let prop_dominator_capped_by_sources =
  qcase ~count:60 "min dominator never exceeds the source count" gen_dag
    (fun params ->
      let g = dag_of params in
      let all = Prbp.Bitset.create (Dag.n_nodes g) in
      Prbp.Bitset.fill all;
      (* the set of sources dominates everything *)
      Prbp.Dominator.min_dominator_size g all <= Dag.n_sources g)

let prop_prbp_cost_monotone_r =
  qcase ~count:30 "heuristic PRBP cost weakly improves with cache" gen_dag
    (fun params ->
      let g = dag_of params in
      let c2 = Prbp.Heuristic.prbp_cost ~r:2 g in
      let c6 = Prbp.Heuristic.prbp_cost ~r:6 g in
      (* Belady eviction with more capacity never loads/saves more *)
      c6 <= c2)

let prop_exact_sandwich =
  qcase ~count:15 "trivial <= OPT_PRBP <= OPT_RBP on solvable sizes"
    (QCheck.make
       ~print:(fun s -> Printf.sprintf "seed=%d" s)
       QCheck.Gen.(int_range 1 10_000))
    (fun seed ->
      let g =
        Prbp.Graphs.Random_dag.make ~seed ~layers:3 ~width:2 ~density:0.4 ()
      in
      let r = Dag.max_in_degree g + 1 in
      match Test_util.opt_rbp_opt (Prbp.Rbp.config ~r ()) g with
      | None -> false
      | Some rb ->
          let pb = Test_util.opt_prbp (Prbp.Prbp_game.config ~r ()) g in
          Dag.trivial_cost g <= pb && pb <= rb)

let suite =
  [
    ( "properties",
      [
        prop_heuristic_prbp_valid;
        prop_heuristic_rbp_valid;
        prop_41_translation;
        prop_lemma_64;
        prop_lemma_68;
        prop_hong_kung;
        prop_dominator_monotone;
        prop_dominator_capped_by_sources;
        prop_prbp_cost_monotone_r;
        prop_exact_sandwich;
      ] );
  ]

(* Anytime-solver contract: budgets stop the search with a certified
   interval instead of an exception, telemetry never perturbs the
   search, and strategy reconstruction is strictly opt-in. *)

open Test_util
module Dag = Prbp.Dag

let rcfg r = Prbp.Rbp.config ~r ()

let pcfg r = Prbp.Prbp_game.config ~r ()

(* Bounded outcomes bracket the true optimum: solve the same instance
   once under a starvation budget and once unbudgeted, and check
   lower <= OPT <= upper whenever the starved solve was truncated. *)
let qcheck_bounded_brackets_opt =
  qcase ~count:30 "Bounded brackets the unbudgeted optimum"
    QCheck.(
      triple (int_bound 10_000) (int_range 2 4) (int_range 2 3))
    (fun (seed, layers, width) ->
      let g =
        Prbp.Graphs.Random_dag.make ~seed ~max_in_degree:3 ~layers ~width ()
      in
      let r = max 2 (min 4 (Dag.max_in_degree g + 1)) in
      let starved = S.Budget.states 30 in
      let brackets truncated full =
        match truncated with
        | S.Optimal _ | S.Unsolvable _ ->
            true (* instance fits even a 30-state budget *)
        | S.Bounded b -> (
            match Lazy.force full with
            | S.Optimal o ->
                b.S.lower <= o.S.cost
                && (match b.S.upper with
                   | Some u -> o.S.cost <= u
                   | None -> true)
                && b.S.lower >= 1
            | S.Unsolvable _ ->
                (* no pebbling exists: only the upper bound (which would
                   claim one does) must be absent *)
                b.S.upper = None
            | S.Bounded _ -> true (* unbudgeted side truncated: skip *))
      in
      brackets
        (Prbp.Exact_rbp.solve ~budget:starved (rcfg r) g)
        (lazy (Prbp.Exact_rbp.solve (rcfg r) g))
      (* unpruned: no incumbent, so nothing clamps the lower bound —
         this is the path where a state dropped at the cap (or settled
         but not expanded) must still be counted in [lower] *)
      && brackets
           (Prbp.Exact_rbp.solve ~budget:starved ~prune:false (rcfg r) g)
           (lazy (Prbp.Exact_rbp.solve (rcfg r) g))
      && (Dag.n_edges g > 40
         || brackets
              (Prbp.Exact_prbp.solve ~budget:starved (pcfg r) g)
              (lazy (Prbp.Exact_prbp.solve (pcfg r) g))))

(* Telemetry is observational: the same solve with a sink attached
   returns a bit-identical outcome (cost, stats, everything). *)
let test_telemetry_is_observational () =
  let g, _ = Prbp.Graphs.Fig1.full () in
  let events = ref 0 in
  let sink =
    S.Telemetry.make ~every:1 (fun _ -> incr events)
  in
  let quiet = Prbp.Exact_prbp.solve (pcfg 4) g in
  let traced = Prbp.Exact_prbp.solve ~telemetry:sink (pcfg 4) g in
  check_true "telemetry emitted" (!events > 0);
  match (quiet, traced) with
  | S.Optimal a, S.Optimal b ->
      check_int "same cost" a.S.cost b.S.cost;
      check_int "same explored" a.S.stats.S.explored b.S.stats.S.explored;
      check_int "same expansions" a.S.stats.S.expansions
        b.S.stats.S.expansions;
      check_int "same pruned" a.S.stats.S.pruned b.S.stats.S.pruned
  | _ -> Alcotest.fail "fig1 at r=4 must be Optimal both ways"

(* A wall-clock deadline produces a Bounded outcome, not an exception,
   on an instance far too large to finish in 1 ms. *)
let test_deadline_yields_bounded () =
  let g =
    Prbp.Graphs.Random_dag.make ~seed:5 ~max_in_degree:2 ~layers:7 ~width:2 ()
  in
  let budget = S.Budget.v ~max_millis:1 ~check_every:256 () in
  match Prbp.Exact_prbp.solve ~budget (pcfg 3) g with
  | S.Bounded b ->
      check_true "stopped on deadline or states"
        (b.S.stopped = S.Deadline || b.S.stopped = S.Max_states);
      check_true "lower >= 1" (b.S.lower >= 1);
      check_true "lower <= upper"
        (match b.S.upper with Some u -> b.S.lower <= u | None -> true)
  | S.Optimal _ | S.Unsolvable _ ->
      Alcotest.fail "expected a truncated (Bounded) solve under 1 ms"

(* A hand-built eight-state toy game (Engine.Make over an explicit
   transition table) whose admissible residual is exact, built so a
   frontier-only lower bound provably overshoots: the single cheap
   exit from the settled region is exactly the state the budget hides
   (dropped at the cap, or settled-but-unexpanded at a stop), while
   the surviving decoy frontier state carries d + residual = 6,
   far above OPT = 1. *)
module Toy = struct
  (* 0 -1-> 1(decoy) -1-> 4 -1-> 5 -1-> 6 -1-> 7 -1-> 3(goal)
     0 -0-> 2 -1-> 3(goal);  OPT = 1 via 0, 2, 3. *)
  let edges =
    [|
      [ (1, 1); (2, 0) ];
      [ (4, 1) ];
      [ (3, 1) ];
      [];
      [ (5, 1) ];
      [ (6, 1) ];
      [ (7, 1) ];
      [ (3, 1) ];
    |]

  (* exact cost-to-go per state: the tightest admissible residual *)
  let res = [| 1; 5; 1; 0; 4; 3; 2; 1 |]

  module G = struct
    type inst = unit

    type move = int (* destination state *)

    let name = "toy"

    let dummy_move = 0

    let width () = 1

    let write_init () buf = buf.(0) <- 0

    let is_goal () buf = buf.(0) = 3

    let residual_lb () buf = res.(buf.(0))

    let heuristic_ub () = max_int

    let expand () cur ~scratch ~emit =
      List.iter
        (fun (dst, c) ->
          scratch.(0) <- dst;
          emit dst c)
        edges.(cur.(0))
  end

  module E = Prbp.Engine.Make (G)
end

(* A 2-state cap admits init plus the decoy and drops the cheap
   successor (state 2); the dropped state's continuation must keep the
   certified lower bound at OPT = 1 (the decoy alone would claim 6). *)
let test_toy_dropped_state_lower () =
  match Toy.E.solve ~budget:(S.Budget.states 2) ~prune:false () with
  | S.Bounded b ->
      check_true "stopped on states" (b.S.stopped = S.Max_states);
      check_int "certified lower stays at OPT" 1 b.S.lower
  | S.Optimal _ | S.Unsolvable _ -> Alcotest.fail "expected Bounded at cap 2"

(* Cancelling on the second gate stops the solve right after state 2
   is settled but before it is expanded; its continuation must keep
   the certified lower bound at OPT = 1 (the decoy alone would claim
   6). *)
let test_toy_unexpanded_state_lower () =
  let calls = ref 0 in
  let budget =
    S.Budget.v
      ~cancelled:(fun () ->
        incr calls;
        !calls >= 2)
      ~check_every:1 ()
  in
  match Toy.E.solve ~budget ~prune:false () with
  | S.Bounded b ->
      check_true "stopped on cancel" (b.S.stopped = S.Cancelled);
      check_int "certified lower stays at OPT" 1 b.S.lower
  | S.Optimal _ | S.Unsolvable _ ->
      Alcotest.fail "expected Bounded under cancellation"

(* Regression: a state-cap truncation without pruning (no incumbent
   to clamp against) still reports a sound lower bound — states
   dropped at the cap and the state settled when the stop landed both
   count as exits from the settled region. *)
let test_unpruned_truncation_lower_is_sound () =
  let g = Prbp.Graphs.Basic.pyramid 4 in
  let opt =
    match Prbp.Exact_rbp.solve (rcfg 3) g with
    | S.Optimal o -> o.S.cost
    | _ -> Alcotest.fail "pyramid 4 at r=3 must be Optimal unbudgeted"
  in
  for cap = 2 to 40 do
    match
      Prbp.Exact_rbp.solve ~budget:(S.Budget.states cap) ~prune:false (rcfg 3)
        g
    with
    | S.Bounded b ->
        check_true
          (Printf.sprintf "lower %d <= OPT %d at cap %d" b.S.lower opt cap)
          (b.S.lower <= opt);
        check_true "no incumbent without pruning" (b.S.upper = None)
    | S.Optimal o -> check_int "optimal despite cap" opt o.S.cost
    | S.Unsolvable _ -> Alcotest.fail "pyramid 4 at r=3 is solvable"
  done

(* The heuristic incumbent strategy, like the optimal one, is opt-in:
   a truncated solve attaches it only under [want_strategy]. *)
let test_incumbent_strategy_opt_in () =
  let g = Prbp.Graphs.Basic.pyramid 4 in
  let starved = S.Budget.states 20 in
  match
    ( Prbp.Exact_rbp.solve ~budget:starved (rcfg 3) g,
      Prbp.Exact_rbp.solve ~budget:starved ~want_strategy:true (rcfg 3) g )
  with
  | S.Bounded plain, S.Bounded with_strat ->
      check_true "no incumbent moves by default"
        (plain.S.incumbent_strategy = None);
      check_true "incumbent moves when requested"
        (with_strat.S.incumbent_strategy <> None);
      check_true "upper present either way"
        (plain.S.upper <> None && with_strat.S.upper <> None)
  | _ -> Alcotest.fail "expected Bounded under a 20-state budget"

(* Strategy reconstruction is opt-in: without [want_strategy] the
   outcome carries no moves and the memory estimate shrinks (no parent
   arrays are allocated). *)
let test_strategy_opt_in () =
  let g, _ = Prbp.Graphs.Fig1.full () in
  match
    ( Prbp.Exact_rbp.solve (rcfg 4) g,
      Prbp.Exact_rbp.solve ~want_strategy:true (rcfg 4) g )
  with
  | S.Optimal plain, S.Optimal with_strat ->
      check_true "no strategy by default" (plain.S.strategy = None);
      check_true "strategy when requested" (with_strat.S.strategy <> None);
      check_true "parent arrays cost heap words"
        (plain.S.stats.S.mem_words < with_strat.S.stats.S.mem_words)
  | _ -> Alcotest.fail "fig1 at r=4 must be Optimal"

(* A memory budget below the table's own footprint stops immediately
   with a Bounded outcome flagged Max_words. *)
let test_max_words_budget () =
  let g = Prbp.Graphs.Basic.pyramid 4 in
  let budget = S.Budget.v ~max_words:64 ~check_every:1 () in
  match Prbp.Exact_rbp.solve ~budget (rcfg 5) g with
  | S.Bounded b -> check_true "stopped on words" (b.S.stopped = S.Max_words)
  | S.Optimal _ | S.Unsolvable _ -> Alcotest.fail "expected Bounded"

(* Cooperative cancellation: a pre-set flag stops the solve on the
   first gate, and the outcome says so. *)
let test_cancellation () =
  let g = Prbp.Graphs.Basic.pyramid 4 in
  let budget = S.Budget.v ~cancelled:(fun () -> true) ~check_every:1 () in
  match Prbp.Exact_rbp.solve ~budget (rcfg 5) g with
  | S.Bounded b -> check_true "stopped on cancel" (b.S.stopped = S.Cancelled)
  | S.Optimal _ | S.Unsolvable _ -> Alcotest.fail "expected Bounded"

let suite =
  [
    ( "anytime",
      [
        qcheck_bounded_brackets_opt;
        case "telemetry is observational" test_telemetry_is_observational;
        case "1 ms deadline yields Bounded" test_deadline_yields_bounded;
        case "toy game: dropped state keeps lower sound"
          test_toy_dropped_state_lower;
        case "toy game: unexpanded state keeps lower sound"
          test_toy_unexpanded_state_lower;
        case "unpruned truncation lower bound is sound"
          test_unpruned_truncation_lower_is_sound;
        case "incumbent strategy is opt-in" test_incumbent_strategy_opt_in;
        case "strategy reconstruction is opt-in" test_strategy_opt_in;
        case "memory budget yields Bounded" test_max_words_budget;
        case "cancellation yields Bounded" test_cancellation;
      ] );
  ]

open Test_util
module Dag = Prbp.Dag

let families () =
  [
    ("diamond", Prbp.Graphs.Basic.diamond ());
    ("pyramid4", Prbp.Graphs.Basic.pyramid 4);
    ("grid3x4", Prbp.Graphs.Basic.grid 3 4);
    ("fig1", fst (Prbp.Graphs.Fig1.full ()));
    ("tree23", (Prbp.Graphs.Tree.make ~k:2 ~depth:3).Prbp.Graphs.Tree.dag);
    ("fft8", (Prbp.Graphs.Fft.make ~m:8).Prbp.Graphs.Fft.dag);
    ("matvec3", (Prbp.Graphs.Matvec.make ~m:3).Prbp.Graphs.Matvec.dag);
  ]

let test_rbp_valid_everywhere () =
  List.iter
    (fun (name, g) ->
      let r = Dag.max_in_degree g + 1 in
      let c = Prbp.Heuristic.rbp_cost ~r g in
      check_true (name ^ " >= trivial") (c >= Dag.trivial_cost g))
    (families ())

let test_prbp_valid_everywhere () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun r ->
          let c = Prbp.Heuristic.prbp_cost ~r g in
          check_true
            (Printf.sprintf "%s r=%d >= trivial" name r)
            (c >= Dag.trivial_cost g))
        [ 2; 3; 5 ])
    (families ())

let test_rbp_requires_capacity () =
  let g = Prbp.Graphs.Basic.fan_in 4 in
  check_true "refuses r < Δin+1"
    (match Prbp.Heuristic.rbp ~r:4 g with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_prbp_requires_r2 () =
  check_true "refuses r=1"
    (match Prbp.Heuristic.prbp ~r:1 (Prbp.Graphs.Basic.diamond ()) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_more_cache_no_worse_on_path () =
  let g = Prbp.Graphs.Basic.grid 4 4 in
  let c3 = Prbp.Heuristic.prbp_cost ~r:3 g in
  let c8 = Prbp.Heuristic.prbp_cost ~r:8 g in
  check_true "more cache helps" (c8 <= c3)

let test_large_cache_gives_trivial_cost () =
  (* with unbounded cache nothing is ever evicted *)
  List.iter
    (fun (name, g) ->
      let r = Dag.n_nodes g + 1 in
      check_int (name ^ " rbp trivial") (Dag.trivial_cost g)
        (Prbp.Heuristic.rbp_cost ~r g);
      check_int (name ^ " prbp trivial") (Dag.trivial_cost g)
        (Prbp.Heuristic.prbp_cost ~r g))
    (families ())

let test_belady_tie_break () =
  (* once node 5 is saved, the cached nodes 3, 4 and 5 are all equally
     dead (never used again) — a pure Belady tie.  The documented rule
     resolves every tie to the lowest node id, so the deletions must
     come out in increasing id order *)
  let g = Prbp.Dag.make ~n:7 [ (2, 4); (3, 4); (4, 5); (0, 6); (1, 6) ] in
  let moves = Prbp.Heuristic.rbp ~r:3 g in
  let deletes =
    List.filter_map
      (function Prbp.Move.R.Delete v -> Some v | _ -> None)
      moves
  in
  check_true "ties evict lowest id first" (deletes = [ 2; 3; 4; 5 ]);
  (* and the whole trace is reproducible: same moves on every run, and
     with the topological order passed explicitly *)
  check_true "deterministic" (moves = Prbp.Heuristic.rbp ~r:3 g);
  check_true "explicit order agrees"
    (moves = Prbp.Heuristic.rbp ~order:(Prbp.Topo.sort g) ~r:3 g)

let test_big_random_dags () =
  (* scale check: a few hundred nodes run in well under a second *)
  let g =
    Prbp.Graphs.Random_dag.make ~seed:7 ~layers:12 ~width:20 ~density:0.1
      ~max_in_degree:6 ()
  in
  let r = Dag.max_in_degree g + 2 in
  let crbp = Prbp.Heuristic.rbp_cost ~r g in
  let cprbp = Prbp.Heuristic.prbp_cost ~r g in
  check_true "both valid and nontrivial"
    (crbp >= Dag.trivial_cost g && cprbp >= Dag.trivial_cost g)

let suite =
  [
    ( "heuristic",
      [
        case "rbp valid across families" test_rbp_valid_everywhere;
        case "prbp valid across families and r" test_prbp_valid_everywhere;
        case "rbp capacity precondition" test_rbp_requires_capacity;
        case "prbp needs r>=2" test_prbp_requires_r2;
        case "more cache no worse" test_more_cache_no_worse_on_path;
        case "unbounded cache -> trivial cost" test_large_cache_gives_trivial_cost;
        case "belady ties break to lowest id" test_belady_tie_break;
        case "scales to hundreds of nodes" test_big_random_dags;
      ] );
  ]

(* lib/frontier: the per-move cost model, the certified Pareto
   enumerator, and the pooled-capacity multiprocessor brackets.

   The load-bearing invariants:
   - every frontier point's witness replays through the
     Prbp_pebble.Multi rule engines at exactly its claimed comm_upper;
   - the p = 1 front collapses to the single-processor optimum;
   - no surviving front point certifiably dominates another survivor
     (dominance-marking soundness);
   - min_r_for_comm agrees with a settled sweep;
   - the pooled lower bound never exceeds the multiprocessor optimum
     and the lifted upper witness re-verifies. *)

open Test_util
module Dag = Prbp.Dag
module Multi = Prbp.Multi
module F = Prbp.Frontier.Frontier
module Cm = Prbp.Frontier.Cost_model
module Multi_bounds = Prbp.Bounds.Multi_bounds
module Lower = Prbp.Bounds.Lower

(* ------------------------------------------------------------------ *)
(* Cost model *)

let test_unit_model () =
  let g = Prbp.Graphs.Basic.diamond () in
  let cfg = Multi.config ~p:2 ~r:3 () in
  match mrbp_strategy cfg g with
  | None -> Alcotest.fail "diamond r=3 p=2 should be solvable"
  | Some (cost, moves) -> (
      match Cm.eval_rbp Cm.unit cfg g moves with
      | Error e -> Alcotest.failf "eval_rbp: %s" e
      | Ok e ->
          (* the unit model prices one word per I/O move, so its comm
             is exactly the checker's cost *)
          check_int "comm = checker cost" cost e.Cm.comm;
          check_int "both processors priced" 2
            (Array.length e.Cm.per_proc_time);
          check_int "makespan = max per-proc time"
            (Array.fold_left max 0 e.Cm.per_proc_time)
            e.Cm.makespan;
          check_true "peak memory within capacity" (e.Cm.peak_mem <= 3);
          check_true "some compute time accrued" (e.Cm.makespan > 0))

let test_eval_rejects_invalid () =
  let g = Prbp.Graphs.Basic.diamond () in
  let cfg = Multi.config ~p:2 ~r:3 () in
  (* computing a non-source before its inputs are red must be rejected
     by the checker the evaluator runs first *)
  let bad : Multi.Move.rbp list = [ Multi.Move.Compute (0, 3) ] in
  check_err "invalid replay" (Cm.eval_rbp Cm.unit cfg g bad)

let test_makespan_lower () =
  let g = Prbp.Graphs.Basic.diamond () in
  let work = Cm.compute_work Cm.unit ~game:`Rbp g in
  check_int "rbp work = non-source nodes"
    (Dag.n_nodes g - List.length (Dag.sources g))
    work;
  check_int "prbp work = edges" (Dag.n_edges g)
    (Cm.compute_work Cm.unit ~game:`Prbp g);
  (* ⌈(work + comm)/p⌉ under the unit model *)
  check_int "p=1 no comm" work
    (Cm.makespan_lower Cm.unit ~game:`Rbp ~p:1 ~comm_lower:0 g);
  check_int "p=1 with comm" (work + 2)
    (Cm.makespan_lower Cm.unit ~game:`Rbp ~p:1 ~comm_lower:2 g);
  check_int "p=2 averages" ((work + 2 + 1) / 2)
    (Cm.makespan_lower Cm.unit ~game:`Rbp ~p:2 ~comm_lower:2 g);
  check_true "critical path is positive"
    (Cm.critical_path Cm.unit ~game:`Rbp g > 0)

let test_scalarize () =
  let v = { Cm.time = 3; comm = 2; mem = 5 } in
  check_int "comm_only" 2 (Cm.scalarize Cm.comm_only v);
  check_int "weighted" 8
    (Cm.scalarize { Cm.w_time = 2; w_comm = 1; w_mem = 0 } v)

(* ------------------------------------------------------------------ *)
(* Exact sweeps at p = 1 collapse to the single-processor optimum *)

let test_p1_collapse () =
  let check_family name g rs =
    let f_rbp = F.sweep F.Rbp_mc ~p:1 ~rs g in
    List.iter
      (fun (pt : F.point) ->
        check_true (name ^ ": rbp settled") pt.F.settled;
        check_int
          (Printf.sprintf "%s: rbp p=1 r=%d = OPT_1" name pt.F.r)
          (opt_rbp (Prbp.Rbp.config ~r:pt.F.r ()) g)
          pt.F.comm_lower)
      f_rbp.F.points;
    List.iter
      (fun r ->
        check_true
          (Printf.sprintf "%s: rbp r=%d infeasible both ways" name r)
          (opt_rbp_opt (Prbp.Rbp.config ~r ()) g = None))
      f_rbp.F.infeasible_rs;
    let f_prbp = F.sweep F.Prbp_mc ~p:1 ~rs g in
    List.iter
      (fun (pt : F.point) ->
        check_true (name ^ ": prbp settled") pt.F.settled;
        check_int
          (Printf.sprintf "%s: prbp p=1 r=%d = OPT_1" name pt.F.r)
          (opt_prbp (Prbp.Prbp_game.config ~r:pt.F.r ()) g)
          pt.F.comm_lower)
      f_prbp.F.points
  in
  check_family "diamond" (Prbp.Graphs.Basic.diamond ()) [ 2; 3; 4 ];
  check_family "fig1" (fst (Prbp.Graphs.Fig1.full ())) [ 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Witness replay: every point's certificate re-checks independently *)

let replay_ok g (pt : F.point) =
  match (pt.F.witness, pt.F.comm_upper) with
  | Some w, Some cu -> (
      let cfg = Multi.config ~p:pt.F.p ~r:pt.F.r () in
      match w with
      | Multi_bounds.Rbp_mc_moves mv -> Multi.R.check cfg g mv = Ok cu
      | Multi_bounds.Prbp_mc_moves mv -> Multi.P.check cfg g mv = Ok cu)
  | _ -> false

let test_witness_replay () =
  let one name game g rs =
    let f = F.sweep game ~p:2 ~rs g in
    check_true (name ^ ": has points") (f.F.points <> []);
    List.iter
      (fun (pt : F.point) ->
        check_true
          (Printf.sprintf "%s r=%d: verified" name pt.F.r)
          pt.F.verified;
        check_true
          (Printf.sprintf "%s r=%d: witness replays" name pt.F.r)
          (replay_ok g pt))
      f.F.points
  in
  one "diamond rbp" F.Rbp_mc (Prbp.Graphs.Basic.diamond ()) [ 3; 4 ];
  one "diamond prbp" F.Prbp_mc (Prbp.Graphs.Basic.diamond ()) [ 2; 3 ];
  one "fig1 prbp" F.Prbp_mc (fst (Prbp.Graphs.Fig1.full ())) [ 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Dominance soundness, property-tested over random DAGs *)

let gen_small_dag =
  QCheck.make
    ~print:(fun (seed, layers, width) ->
      Printf.sprintf "seed=%d layers=%d width=%d" seed layers width)
    QCheck.Gen.(triple (int_range 1 10_000) (int_range 2 3) (int_range 1 3))

let random_dag (seed, layers, width) =
  Prbp.Graphs.Random_dag.make ~seed ~layers ~width ~density:0.4
    ~max_in_degree:2 ()

let certified_dominates (a : F.point) (b : F.point) =
  a.F.r < b.F.r
  &&
  match (a.F.comm_upper, a.F.time_upper) with
  | Some cu, Some tu -> cu <= b.F.comm_lower && tu <= b.F.time_lower
  | _ -> false

let dominance_sound =
  qcase ~count:25 "front: no survivor certifiably dominates another"
    gen_small_dag (fun inst ->
      let g = random_dag inst in
      let f = F.sweep F.Prbp_mc ~p:2 ~rs:[ 2; 3; 4 ] g in
      let front = F.front f in
      (* soundness of the marking: survivors are mutually undominated,
         and every dominated point really is beaten by some point *)
      List.for_all
        (fun a -> not (List.exists (certified_dominates a) front))
        front
      && List.for_all
           (fun (b : F.point) ->
             (not b.F.dominated)
             || List.exists (fun a -> certified_dominates a b) f.F.points)
           f.F.points)

let settled_points_exact =
  qcase ~count:25 "sweep: settled points have closed intervals"
    gen_small_dag (fun inst ->
      let g = random_dag inst in
      let f = F.sweep F.Rbp_mc ~p:2 ~rs:[ 3; 4 ] g in
      List.for_all
        (fun (pt : F.point) ->
          (not pt.F.settled) || pt.F.comm_upper = Some pt.F.comm_lower)
        f.F.points)

(* ------------------------------------------------------------------ *)
(* Reverse ε-constraint *)

let test_min_r () =
  let g = Prbp.Graphs.Basic.diamond () in
  (* the sweep says: prbp p=2 needs comm 4 at r=2, comm 2 at r ≥ 3 *)
  (match F.min_r_for_comm F.Prbp_mc ~p:2 ~comm_cap:4 g with
  | F.Min_r { r; comm } ->
      check_int "cap 4: r" 2 r;
      check_int "cap 4: comm" 4 comm
  | _ -> Alcotest.fail "cap 4: expected Min_r");
  (match F.min_r_for_comm F.Prbp_mc ~p:2 ~comm_cap:2 g with
  | F.Min_r { r; comm } ->
      check_int "cap 2: r" 3 r;
      check_int "cap 2: comm" 2 comm
  | _ -> Alcotest.fail "cap 2: expected Min_r");
  (* one source load and one sink save are mandatory: cap 1 is
     unmeetable at any capacity *)
  match F.min_r_for_comm F.Prbp_mc ~p:2 ~comm_cap:1 g with
  | F.Min_r_infeasible -> ()
  | _ -> Alcotest.fail "cap 1: expected infeasible"

let min_r_matches_sweep =
  qcase ~count:15 "min_r_for_comm agrees with a settled sweep" gen_small_dag
    (fun inst ->
      let g = random_dag inst in
      let rs = List.init (Dag.n_nodes g) (fun i -> i + 1) in
      let f = F.sweep F.Rbp_mc ~p:2 ~rs g in
      if f.F.exhausted then QCheck.assume_fail ()
      else
        match
          List.filter
            (fun (pt : F.point) -> pt.F.comm_upper <> None)
            f.F.points
        with
        | [] -> true
        | points -> (
            let cap =
              List.fold_left
                (fun acc (pt : F.point) -> min acc pt.F.comm_lower)
                max_int points
            in
            let expect =
              List.fold_left
                (fun acc (pt : F.point) ->
                  if pt.F.comm_lower <= cap then min acc pt.F.r else acc)
                max_int points
            in
            match F.min_r_for_comm F.Rbp_mc ~p:2 ~comm_cap:cap g with
            | F.Min_r { r; _ } -> r = expect
            | _ -> false))

(* ------------------------------------------------------------------ *)
(* Pooled-capacity brackets *)

let test_multi_bounds () =
  (* past the exact engine's node cap: FFT(16) has 80 nodes *)
  let g = (Prbp.Graphs.Fft.make ~m:16).Prbp.Graphs.Fft.dag in
  (match Multi_bounds.rbp ~p:4 ~r:4 g with
  | Error e -> Alcotest.failf "multi rbp bracket: %s" e
  | Ok b -> (
      check_true "ordered"
        (b.Multi_bounds.lower.Lower.bound <= b.Multi_bounds.upper);
      check_true "pooled rule label"
        (let rule = b.Multi_bounds.lower.Lower.rule in
         rule = "none"
         || (String.length rule >= 7 && String.sub rule 0 7 = "pooled:"));
      (* the lifted witness replays at the claimed upper bound *)
      match b.Multi_bounds.moves with
      | Multi_bounds.Rbp_mc_moves mv ->
          check_true "witness replays"
            (Multi.R.check (Multi.config ~p:4 ~r:4 ()) g mv
            = Ok b.Multi_bounds.upper)
      | Multi_bounds.Prbp_mc_moves _ -> Alcotest.fail "wrong move family"));
  match Multi_bounds.prbp ~p:4 ~r:4 g with
  | Error e -> Alcotest.failf "multi prbp bracket: %s" e
  | Ok b -> (
      check_true "prbp ordered"
        (b.Multi_bounds.lower.Lower.bound <= b.Multi_bounds.upper);
      match b.Multi_bounds.moves with
      | Multi_bounds.Prbp_mc_moves mv ->
          check_true "prbp witness replays"
            (Multi.P.check (Multi.config ~p:4 ~r:4 ()) g mv
            = Ok b.Multi_bounds.upper)
      | Multi_bounds.Rbp_mc_moves _ -> Alcotest.fail "wrong move family")

let pooled_lower_sound =
  qcase ~count:20 "pooled lower bound never exceeds the p=2 optimum"
    gen_small_dag (fun inst ->
      let g = random_dag inst in
      let r = 3 in
      let lb = Multi_bounds.lower ~game:Lower.Rbp ~p:2 ~r g in
      match
        tolerant (Prbp.Exact_multi.rbp_solve (Multi.config ~p:2 ~r ()) g)
      with
      | None -> true (* truncated: nothing to compare against *)
      | Some None -> true (* unsolvable at this r *)
      | Some (Some cost) -> lb.Lower.bound <= cost)

(* ------------------------------------------------------------------ *)
(* Budget anytime-ness: a starved sweep still yields sound intervals *)

let test_anytime () =
  let g = (Prbp.Graphs.Fft.make ~m:8).Prbp.Graphs.Fft.dag in
  let budget = Prbp.Solver.Budget.v ~max_states:50 () in
  let f = F.sweep ~budget F.Rbp_mc ~p:2 ~rs:[ 3; 4 ] g in
  List.iter
    (fun (pt : F.point) ->
      (match pt.F.comm_upper with
      | Some u -> check_true "interval ordered" (pt.F.comm_lower <= u)
      | None -> ());
      if pt.F.verified then
        check_true "verified points replay" (replay_ok g pt))
    f.F.points;
  check_true "starved sweep reports exhaustion or settles"
    (f.F.exhausted
    || List.for_all (fun (pt : F.point) -> pt.F.settled) f.F.points)

let suite =
  [
    ( "frontier",
      [
        case "unit cost model prices a solver witness" test_unit_model;
        case "evaluator rejects invalid strategies" test_eval_rejects_invalid;
        case "certified makespan floor" test_makespan_lower;
        case "scalarizations" test_scalarize;
        case "p=1 front collapses to the single-processor OPT"
          test_p1_collapse;
        case "every witness replays through the Multi checkers"
          test_witness_replay;
        dominance_sound;
        settled_points_exact;
        case "min_r_for_comm on diamond" test_min_r;
        min_r_matches_sweep;
        slow_case "pooled brackets past exact reach" test_multi_bounds;
        pooled_lower_sound;
        case "starved sweeps stay sound" test_anytime;
      ] );
  ]

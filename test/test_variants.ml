(* Appendix B model variants: re-computation, sliding, compute costs,
   no-deletion. *)
open Test_util
module Dag = Prbp.Dag
module Rbp = Prbp.Rbp
module Pg = Prbp.Prbp_game
module R = Prbp.Move.R
module P = Prbp.Move.P

let fig1 () = Prbp.Graphs.Fig1.full ()

(* --- B.1: re-computation ------------------------------------------- *)

let test_recompute_allows_second_compute () =
  let g = Prbp.Graphs.Basic.diamond () in
  let cfg = Rbp.config ~r:3 ~one_shot:false () in
  let t = Rbp.start cfg g in
  check_ok "load" (Rbp.apply t (R.Load 0));
  check_ok "compute" (Rbp.apply t (R.Compute 1));
  check_ok "delete" (Rbp.apply t (R.Delete 1));
  check_ok "recompute" (Rbp.apply t (R.Compute 1))

let test_recompute_fig1 () =
  (* Appendix B.1: with re-computation, OPT_RBP drops from 3 to 2 on
     the Figure-1 DAG *)
  let g, _ = fig1 () in
  check_int "one-shot" 3 (Test_util.opt_rbp (Rbp.config ~r:4 ()) g);
  check_int "with recomputation" 2
    (Test_util.opt_rbp (Rbp.config ~r:4 ~one_shot:false ()) g)

let test_recompute_z_layer_restores_gap () =
  (* Appendix B.1: inserting a z-layer between u0 and u1/u2 prevents
     the cheap re-computation of u1, restoring OPT = 3 *)
  let g, i = fig1 () in
  ignore g;
  let z1 = 10 and z2 = 11 in
  let edges =
    [
      (i.Prbp.Graphs.Fig1.u0, z1); (i.u0, z2); (z1, i.u1); (z2, i.u1);
      (z1, i.u2); (z2, i.u2); (i.u1, i.w1); (i.u1, i.w2); (i.u1, i.w4);
      (i.w1, i.w3); (i.w2, i.w3); (i.w3, i.w4); (i.w4, i.v1); (i.w4, i.v2);
      (i.u2, i.v1); (i.u2, i.v2); (i.v1, i.v0); (i.v2, i.v0);
    ]
  in
  let g' = Dag.make ~n:12 edges in
  check_int "recompute gap restored" 3
    (Test_util.opt_rbp (Rbp.config ~r:4 ~one_shot:false ()) g');
  (* PRBP still pebbles the modified DAG at trivial cost *)
  check_int "PRBP unaffected" 2
    (Test_util.opt_prbp (Pg.config ~r:4 ()) g')

let test_prbp_clear_rule () =
  let g = Prbp.Graphs.Basic.path 3 in
  let cfg = Pg.config ~r:2 ~one_shot:false ~recompute:true () in
  let t = Pg.start cfg g in
  check_ok "load" (Pg.apply t (P.Load 0));
  check_ok "mark (0,1)" (Pg.apply t (P.Compute (0, 1)));
  check_ok "clear 1" (Pg.apply t (P.Clear 1));
  check_true "pebble gone" (Pg.pebble t 1 = Pg.Pebble.None_);
  check_int "in-edge unmarked again" 1 (Pg.unmarked_in t 1);
  check_ok "mark again" (Pg.apply t (P.Compute (0, 1)));
  (* clear is limited to internal nodes *)
  check_err "no clear of sources" (Pg.apply t (P.Clear 0));
  check_err "no clear of sinks" (Pg.apply t (P.Clear 2))

let test_clear_requires_variant () =
  let g = Prbp.Graphs.Basic.path 3 in
  let t = Pg.start (Pg.config ~r:2 ()) g in
  check_ok "load" (Pg.apply t (P.Load 0));
  check_ok "mark" (Pg.apply t (P.Compute (0, 1)));
  check_err "clear disabled" (Pg.apply t (P.Clear 1))

(* --- B.2: sliding pebbles ------------------------------------------ *)

let test_slide_rules () =
  let g = Prbp.Graphs.Basic.diamond () in
  let cfg = Rbp.config ~r:3 ~sliding:true () in
  let t = Rbp.start cfg g in
  check_ok "load" (Rbp.apply t (R.Load 0));
  check_ok "slide 0->1" (Rbp.apply t (R.Slide (0, 1)));
  check_false "source red gone" (Rbp.has_red t 0);
  check_true "target red" (Rbp.has_red t 1);
  check_true "computed" (Rbp.is_computed t 1);
  check_err "slide without edge" (Rbp.apply t (R.Slide (1, 2)))

let test_slide_disabled_by_default () =
  let g = Prbp.Graphs.Basic.diamond () in
  let t = Rbp.start (Rbp.config ~r:3 ()) g in
  check_ok "load" (Rbp.apply t (R.Load 0));
  check_err "slide off" (Rbp.apply t (R.Slide (0, 1)))

let test_sliding_fig1_gap_closes () =
  (* B.2: sliding alone already achieves cost 2 on Figure 1 *)
  let g, _ = fig1 () in
  check_int "sliding closes gap" 2
    (Test_util.opt_rbp (Rbp.config ~r:4 ~sliding:true ()) g)

let test_sliding_w0_fix () =
  (* B.2: adding w0 (u1 -> w0 -> w3) restores the RBP-vs-PRBP gap even
     under sliding, while PRBP still costs 2 *)
  let g, i = fig1 () in
  ignore g;
  let w0 = 10 in
  let edges =
    [
      (i.Prbp.Graphs.Fig1.u0, i.u1); (i.u0, i.u2); (i.u1, i.w1);
      (i.u1, i.w2); (i.u1, i.w4); (i.w1, i.w3); (i.w2, i.w3); (i.w3, i.w4);
      (i.w4, i.v1); (i.w4, i.v2); (i.u2, i.v1); (i.u2, i.v2);
      (i.v1, i.v0); (i.v2, i.v0); (i.u1, w0); (w0, i.w3);
    ]
  in
  let g' = Dag.make ~n:11 edges in
  check_int "sliding pays 3" 3
    (Test_util.opt_rbp (Rbp.config ~r:4 ~sliding:true ()) g');
  check_int "PRBP still 2" 2 (Test_util.opt_prbp (Pg.config ~r:4 ()) g')

let test_sliding_binary_tree_matches_prbp () =
  (* B.2: for k = 2 sliding matches PRBP on trees; for k = 3 PRBP wins *)
  let t2 = Prbp.Graphs.Tree.make ~k:2 ~depth:3 in
  let slide2 =
    Test_util.opt_rbp (Rbp.config ~r:3 ~sliding:true ())
      t2.Prbp.Graphs.Tree.dag
  in
  check_int "binary: sliding = PRBP formula" (Prbp.Graphs.Tree.prbp_opt ~k:2 ~depth:3) slide2

let test_sliding_ternary_tree_prbp_wins () =
  let t3 = Prbp.Graphs.Tree.make ~k:3 ~depth:2 in
  let g = t3.Prbp.Graphs.Tree.dag in
  let slide = Test_util.opt_rbp (Rbp.config ~r:4 ~sliding:true ()) g in
  let prbp = Test_util.opt_prbp (Pg.config ~r:4 ()) g in
  check_true "PRBP strictly better" (prbp < slide)

(* --- B.4: no deletion ---------------------------------------------- *)

let test_no_delete_rbp () =
  let g = Prbp.Graphs.Basic.diamond () in
  let cfg = Rbp.config ~r:3 ~no_delete:true () in
  let t = Rbp.start cfg g in
  check_ok "load" (Rbp.apply t (R.Load 0));
  check_err "delete forbidden" (Rbp.apply t (R.Delete 0));
  check_ok "compute" (Rbp.apply t (R.Compute 1));
  check_ok "save removes red" (Rbp.apply t (R.Save 1));
  check_false "red gone after save" (Rbp.has_red t 1);
  check_true "blue placed" (Rbp.has_blue t 1)

let test_no_delete_cost_floor () =
  (* B.4: every node is saved at least once except the ≤ r final reds,
     so OPT >= n - r; verified on the diamond *)
  let g = Prbp.Graphs.Basic.diamond () in
  let c = Test_util.opt_rbp (Rbp.config ~r:3 ~no_delete:true ()) g in
  check_true "n - r floor" (c >= Dag.n_nodes g - 3);
  check_true "at least as costly as unrestricted"
    (c >= Test_util.opt_rbp (Rbp.config ~r:3 ()) g)

let test_no_delete_prbp () =
  let g = Prbp.Graphs.Basic.path 3 in
  let cfg = Pg.config ~r:3 ~no_delete:true () in
  let t = Pg.start cfg g in
  check_ok "load" (Pg.apply t (P.Load 0));
  check_ok "mark (0,1)" (Pg.apply t (P.Compute (0, 1)));
  check_ok "mark (1,2)" (Pg.apply t (P.Compute (1, 2)));
  (* 1 is dark and fully used, but the variant still forbids deletion *)
  check_err "dark delete forbidden" (Pg.apply t (P.Delete 1));
  check_ok "save instead" (Pg.apply t (P.Save 1));
  check_ok "light delete allowed" (Pg.apply t (P.Delete 1))

(* --- B.3: compute costs -------------------------------------------- *)

let test_compute_cost_comparability () =
  (* B.3: per-edge ε gives ε·|E| in PRBP vs ε·n-ish in RBP; the
     normalized mode restores comparability *)
  let g = Prbp.Graphs.Basic.fan_in 3 in
  let eps = 0.125 in
  let rbp_moves = R.[ Load 0; Load 1; Load 2; Compute 3; Save 3 ] in
  let t =
    Rbp.run_exn (Rbp.config ~r:4 ~compute_cost:eps ()) g rbp_moves
  in
  Alcotest.(check (float 1e-9)) "RBP: one compute" (4. +. eps) (Rbp.total_cost t);
  let prbp_moves =
    P.[
      Load 0; Compute (0, 3); Delete 0; Load 1; Compute (1, 3); Delete 1;
      Load 2; Compute (2, 3); Delete 2; Save 3;
    ]
  in
  let tp =
    Pg.run_exn (Pg.config ~r:2 ~compute_cost:eps ()) g prbp_moves
  in
  Alcotest.(check (float 1e-9)) "PRBP per-edge: three computes"
    (4. +. (3. *. eps))
    (Pg.total_cost tp);
  let tn =
    Pg.run_exn
      (Pg.config ~r:2 ~compute_cost:eps ~normalized_cost:true ())
      g prbp_moves
  in
  Alcotest.(check (float 1e-9)) "PRBP normalized: totals match RBP"
    (4. +. eps) (Pg.total_cost tn)

let suite =
  [
    ( "variants",
      [
        case "B.1 re-computation allowed" test_recompute_allows_second_compute;
        case "B.1 fig1: recompute drops cost to 2" test_recompute_fig1;
        case "B.1 z-layer restores the gap" test_recompute_z_layer_restores_gap;
        case "B.1 PRBP clear rule" test_prbp_clear_rule;
        case "B.1 clear requires the variant" test_clear_requires_variant;
        case "B.2 slide rules" test_slide_rules;
        case "B.2 slide disabled by default" test_slide_disabled_by_default;
        case "B.2 fig1: sliding closes the gap" test_sliding_fig1_gap_closes;
        case "B.2 w0 fix restores the gap" test_sliding_w0_fix;
        case "B.2 binary tree: sliding = PRBP" test_sliding_binary_tree_matches_prbp;
        case "B.2 ternary tree: PRBP wins" test_sliding_ternary_tree_prbp_wins;
        case "B.4 no-delete RBP" test_no_delete_rbp;
        case "B.4 cost floor n-r" test_no_delete_cost_floor;
        case "B.4 no-delete PRBP" test_no_delete_prbp;
        case "B.3 compute-cost comparability" test_compute_cost_comparability;
      ] );
  ]

(* The prbpd service stack: pool admission control, LRU cache
   mechanics, HTTP parsing, and the live daemon on a fixed port —
   cache hits byte-identical and re-verified, deadline → Bounded over
   the wire, 503 at capacity, concurrent clients. *)

open Test_util
module Wire = Prbp.Wire
module Serve = Prbp.Serve
module Dag = Prbp.Dag

(* writing to a peer that already hung up must not kill the test
   process (the daemon binary ignores SIGPIPE the same way) *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* ------------------------------------------------------------------ *)
(* Pool: bounded admission *)

let test_pool_admission () =
  let pool = Serve.Pool.create ~workers:2 ~queue:1 in
  let gate = Mutex.create () in
  let release = Condition.create () in
  let released = ref false in
  let done_count = Atomic.make 0 in
  let blocking_job () =
    Mutex.lock gate;
    while not !released do
      Condition.wait release gate
    done;
    Mutex.unlock gate;
    Atomic.incr done_count
  in
  (* 2 workers + queue 1 = 3 admissible blocking jobs *)
  check_true "job 1 admitted" (Serve.Pool.submit pool blocking_job);
  check_true "job 2 admitted" (Serve.Pool.submit pool blocking_job);
  (* wait for both workers to pick their job up (queue drains to 0) *)
  let rec settle tries =
    if Serve.Pool.busy pool < 2 && tries > 0 then begin
      Unix.sleepf 0.01;
      settle (tries - 1)
    end
  in
  settle 300;
  check_int "both workers busy" 2 (Serve.Pool.busy pool);
  check_true "job 3 queues" (Serve.Pool.submit pool blocking_job);
  check_false "job 4 refused: queue full"
    (Serve.Pool.submit pool blocking_job);
  Mutex.lock gate;
  released := true;
  Condition.broadcast release;
  Mutex.unlock gate;
  Serve.Pool.shutdown pool;
  check_int "all admitted jobs ran" 3 (Atomic.get done_count);
  check_false "no submits after shutdown" (Serve.Pool.submit pool ignore)

let test_pool_survives_raising_jobs () =
  let pool = Serve.Pool.create ~workers:1 ~queue:8 in
  let ran = Atomic.make 0 in
  check_true "raising job admitted"
    (Serve.Pool.submit pool (fun () -> failwith "boom"));
  check_true "next job admitted"
    (Serve.Pool.submit pool (fun () -> Atomic.incr ran));
  Serve.Pool.shutdown pool;
  check_int "worker survived the raise" 1 (Atomic.get ran);
  check_int "failure counted" 1 (Serve.Pool.failed pool)

(* ------------------------------------------------------------------ *)
(* Cache: LRU contract *)

let test_cache_lru () =
  let c = Serve.Cache.create ~capacity:2 in
  Serve.Cache.add c "a" 1;
  Serve.Cache.add c "b" 2;
  check_true "a present" (Serve.Cache.find c "a" = Some 1);
  (* a is now most recent; inserting c evicts b *)
  Serve.Cache.add c "c" 3;
  check_true "b evicted" (Serve.Cache.find c "b" = None);
  check_true "a survived (recency)" (Serve.Cache.find c "a" = Some 1);
  check_true "c present" (Serve.Cache.find c "c" = Some 3);
  check_int "at capacity" 2 (Serve.Cache.length c);
  Serve.Cache.add c "a" 10;
  check_true "overwrite" (Serve.Cache.find c "a" = Some 10);
  check_int "overwrite keeps size" 2 (Serve.Cache.length c);
  Serve.Cache.remove c "a";
  check_true "removed" (Serve.Cache.find c "a" = None);
  check_int "hits counted" 4 (Serve.Cache.hits c);
  check_int "misses counted" 2 (Serve.Cache.misses c)

(* ------------------------------------------------------------------ *)
(* HTTP: request reader *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      try Unix.close b with _ -> ())
    (fun () -> f a b)

let test_http_parse () =
  with_socketpair @@ fun client server ->
  let body = "{\"v\":1}" in
  let raw =
    Printf.sprintf
      "POST /v1/solve HTTP/1.1\r\nHost: x\r\nContent-Type: \
       application/json\r\nContent-Length: %d\r\n\r\n%s"
      (String.length body) body
  in
  let _ = Unix.write_substring client raw 0 (String.length raw) in
  Unix.close client;
  match Serve.Http.read_request server with
  | Error e -> Alcotest.failf "read_request: %s" e
  | Ok rq ->
      Alcotest.(check string) "method" "POST" rq.Serve.Http.meth;
      Alcotest.(check string) "path" "/v1/solve" rq.Serve.Http.path;
      Alcotest.(check string) "body" body rq.Serve.Http.body;
      check_true "header lookup is case-insensitive"
        (Serve.Http.header rq "content-TYPE" = Some "application/json")

let test_http_rejects () =
  with_socketpair (fun client server ->
      let raw = "NONSENSE\r\n\r\n" in
      let _ = Unix.write_substring client raw 0 (String.length raw) in
      Unix.close client;
      check_err "malformed request line" (Serve.Http.read_request server));
  with_socketpair (fun client server ->
      let raw =
        "POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\nshort"
      in
      let _ = Unix.write_substring client raw 0 (String.length raw) in
      Unix.close client;
      check_err "truncated body" (Serve.Http.read_request server));
  with_socketpair (fun client server ->
      let raw = "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789" in
      let _ = Unix.write_substring client raw 0 (String.length raw) in
      Unix.close client;
      check_err "body over cap"
        (Serve.Http.read_request ~max_body:4 server))

(* ------------------------------------------------------------------ *)
(* Live server plumbing *)

let next_port = ref 18390

let with_server ?(workers = 2) ?(queue = 16) ?(max_deadline_ms = 10_000) f =
  incr next_port;
  let port = !next_port in
  let cfg =
    {
      Serve.Server.default_config with
      addr = Serve.Server.Tcp ("127.0.0.1", port);
      workers;
      queue;
      max_deadline_ms;
    }
  in
  let stop = Atomic.make false in
  let d = Domain.spawn (fun () -> Serve.Server.run ~stop cfg) in
  let connect () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
    with
    | () -> Some fd
    | exception Unix.Unix_error _ ->
        Unix.close fd;
        None
  in
  (* wait for the listener, with a full /healthz round trip: a
     connect-and-close probe would still be in a worker's hands when
     the test's first real request arrives and steal its pool slot *)
  let rec ready tries =
    let ok =
      match connect () with
      | None -> false
      | Some fd ->
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with _ -> ())
            (fun () ->
              let probe = "GET /healthz HTTP/1.1\r\nHost: p\r\n\r\n" in
              (try
                 ignore (Unix.write_substring fd probe 0 (String.length probe))
               with Unix.Unix_error _ -> ());
              let buf = Bytes.create 256 in
              match Unix.read fd buf 0 256 with
              | 0 -> false
              | _ -> true
              | exception Unix.Unix_error _ -> false)
    in
    ok
    ||
    if tries = 0 then false
    else begin
      Unix.sleepf 0.02;
      ready (tries - 1)
    end
  in
  if not (ready 250) then Alcotest.fail "server did not come up";
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join d)
    (fun () -> f port)

let read_all fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 8192 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
        (* a refused connection may be torn down hard; keep whatever
           response bytes already arrived *)
        Buffer.contents buf
  in
  go ()

type reply = { status : int; headers : (string * string) list; body : string }

let split_head raw =
  match String.index_opt raw '\r' with
  | None -> Alcotest.failf "no status line in %S" raw
  | Some _ -> (
      let rec find_sep i =
        if i + 4 > String.length raw then None
        else if String.sub raw i 4 = "\r\n\r\n" then Some i
        else find_sep (i + 1)
      in
      match find_sep 0 with
      | None -> Alcotest.failf "no header/body separator in %S" raw
      | Some i ->
          (String.sub raw 0 i, String.sub raw (i + 4) (String.length raw - i - 4)))

let parse_reply raw =
  let head, body = split_head raw in
  match String.split_on_char '\n' head with
  | [] -> Alcotest.fail "empty reply head"
  | status_line :: header_lines ->
      let status =
        match String.split_on_char ' ' (String.trim status_line) with
        | _ :: code :: _ -> int_of_string code
        | _ -> Alcotest.failf "bad status line %S" status_line
      in
      let headers =
        List.filter_map
          (fun line ->
            match String.index_opt line ':' with
            | None -> None
            | Some i ->
                Some
                  ( String.lowercase_ascii (String.trim (String.sub line 0 i)),
                    String.trim
                      (String.sub line (i + 1) (String.length line - i - 1)) ))
          header_lines
      in
      let body =
        if List.assoc_opt "transfer-encoding" headers = Some "chunked" then begin
          (* reassemble chunks: size-line CRLF data CRLF ... 0 CRLF CRLF *)
          let b = Buffer.create (String.length body) in
          let pos = ref 0 in
          let line () =
            let i = String.index_from body !pos '\r' in
            let l = String.sub body !pos (i - !pos) in
            pos := i + 2;
            l
          in
          (try
             let rec go () =
               let size = int_of_string ("0x" ^ line ()) in
               if size > 0 then begin
                 Buffer.add_string b (String.sub body !pos size);
                 pos := !pos + size + 2;
                 go ()
               end
             in
             go ()
           with _ -> ());
          Buffer.contents b
        end
        else body
      in
      { status; headers; body }

let request ~port raw =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let _ = Unix.write_substring fd raw 0 (String.length raw) in
      parse_reply (read_all fd))

let post ~port path body =
  request ~port
    (Printf.sprintf
       "POST %s HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s" path
       (String.length body) body)

let get ~port path =
  request ~port (Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n\r\n" path)

let diamond_edges = [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let solve_body ?(game = Wire.Prbp) ?variants ?budget ?want_strategy ?stream
    ~r edges n =
  Wire.encode_request
    (Wire.request ?variants ?budget ?want_strategy ?stream ~kind:Wire.Solve
       ~game ~r (Dag.make ~n edges))

(* ------------------------------------------------------------------ *)
(* Live server: solve, cache, deadline, admission, concurrency *)

let test_serve_solve_and_cache () =
  with_server @@ fun port ->
  let body = solve_body ~r:2 ~want_strategy:true diamond_edges 4 in
  let first = post ~port "/v1/solve" body in
  check_int "status" 200 first.status;
  check_true "first is a miss"
    (List.assoc_opt "x-prbpd-cache" first.headers = Some "miss");
  (match Wire.decode_outcome first.body with
  | Error e -> Alcotest.failf "outcome decode: %s" e
  | Ok o ->
      check_true "optimal" (o.Wire.status = `Optimal);
      check_int "diamond PRBP opt at r=2" 4 o.Wire.lower;
      check_true "strategy present" (o.Wire.strategy <> None));
  let second = post ~port "/v1/solve" body in
  check_true "second is a hit"
    (List.assoc_opt "x-prbpd-cache" second.headers = Some "hit");
  Alcotest.(check string)
    "cache hit returns the byte-identical certificate" first.body second.body;
  (* an isomorphic relabeling shares the entry (content addressing):
     same structure, node ids permuted *)
  let relabeled = [ (3, 2); (3, 1); (2, 0); (1, 0) ] in
  let third =
    post ~port "/v1/solve" (solve_body ~r:2 ~want_strategy:true relabeled 4)
  in
  check_true "relabeled DAG hits too"
    (List.assoc_opt "x-prbpd-cache" third.headers = Some "hit");
  (match Wire.decode_outcome third.body with
  | Error e -> Alcotest.failf "relabeled outcome: %s" e
  | Ok o -> (
      check_int "same optimum" 4 o.Wire.lower;
      (* the translated strategy must replay on the relabeled DAG *)
      match o.Wire.strategy with
      | Some (Wire.Prbp_strategy moves) ->
          let g = Dag.make ~n:4 relabeled in
          check_int "served strategy replays at the served cost" 4
            (prbp_cost ~r:2 g moves)
      | _ -> Alcotest.fail "no strategy served"));
  (* a strategy-less request still hits, body minus the certificate *)
  let lean = post ~port "/v1/solve" (solve_body ~r:2 diamond_edges 4) in
  check_true "lean request hits"
    (List.assoc_opt "x-prbpd-cache" lean.headers = Some "hit");
  match Wire.decode_outcome lean.body with
  | Ok o -> check_true "strategy stripped" (o.Wire.strategy = None)
  | Error e -> Alcotest.failf "lean outcome: %s" e

let test_serve_bracket () =
  with_server @@ fun port ->
  let body =
    Wire.encode_request
      (Wire.request ~want_strategy:true ~kind:Wire.Bracket ~game:Wire.Prbp
         ~r:2
         (Dag.make ~n:4 diamond_edges))
  in
  let first = post ~port "/v1/bracket" body in
  check_int "status" 200 first.status;
  (match Wire.decode_bracket first.body with
  | Error e -> Alcotest.failf "bracket decode: %s" e
  | Ok b ->
      check_true "lower <= upper" (b.Wire.lower <= b.Wire.upper);
      check_true "moves served" (b.Wire.strategy <> None));
  let second = post ~port "/v1/bracket" body in
  check_true "bracket hit"
    (List.assoc_opt "x-prbpd-cache" second.headers = Some "hit");
  Alcotest.(check string) "bracket byte-identical" first.body second.body

let test_serve_deadline_maps_to_bounded () =
  with_server @@ fun port ->
  (* big enough that 1ms of search cannot finish it *)
  let g = (Prbp.Graphs.Random_dag.make ~seed:5 ~max_in_degree:3 ~layers:8 ~width:3 ()) in
  let body =
    Wire.encode_request
      (Wire.request
         ~budget:
           { Wire.max_states = None; max_millis = Some 1; max_words = None }
         ~kind:Wire.Solve ~game:Wire.Prbp ~r:3 g)
  in
  let reply = post ~port "/v1/solve" body in
  check_int "status still 200" 200 reply.status;
  match Wire.decode_outcome reply.body with
  | Error e -> Alcotest.failf "bounded outcome: %s" e
  | Ok o ->
      check_true "deadline maps to a Bounded outcome"
        (o.Wire.status = `Bounded);
      check_true "stop reason is on the wire"
        (o.Wire.stopped = Some "deadline");
      check_true "certified interval survives the wire"
        (match o.Wire.upper with
        | Some u -> o.Wire.lower <= u
        | None -> true)

let test_serve_admission_503 () =
  with_server ~workers:1 ~queue:0 ~max_deadline_ms:10_000 @@ fun port ->
  (* occupy the single worker with a deliberately slow solve ... *)
  let slow =
    Wire.encode_request
      (Wire.request
         ~budget:
           {
             Wire.max_states = None;
             max_millis = Some 3_000;
             max_words = None;
           }
         ~kind:Wire.Solve ~game:Wire.Prbp ~r:3
         ((Prbp.Graphs.Random_dag.make ~seed:5 ~max_in_degree:3 ~layers:8 ~width:3 ())))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let raw =
        Printf.sprintf
          "POST /v1/solve HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s"
          (String.length slow) slow
      in
      let _ = Unix.write_substring fd raw 0 (String.length raw) in
      Unix.sleepf 0.5;
      (* ... then knock again: the accept loop must refuse immediately *)
      let refused = post ~port "/v1/healthz-does-not-matter" "{}" in
      check_int "over capacity: 503" 503 refused.status;
      check_true "error body is wire-schema"
        (Wire.decode_error refused.body <> None);
      (* the slow request itself still completes (bounded) *)
      let first = parse_reply (read_all fd) in
      check_int "occupied worker finishes" 200 first.status)

let test_serve_rejections () =
  with_server @@ fun port ->
  check_int "garbage body: 400" 400 (post ~port "/v1/solve" "nonsense").status;
  check_int "unknown route: 404" 404 (post ~port "/v1/nope" "{}").status;
  check_int "bad method: 405"
    405
    (request ~port "PUT /v1/solve HTTP/1.1\r\nHost: t\r\n\r\n").status;
  let mismatched =
    Wire.encode_request
      (Wire.request ~kind:Wire.Bracket ~game:Wire.Prbp ~r:2
         (Dag.make ~n:4 diamond_edges))
  in
  check_int "kind/route mismatch: 400" 400
    (post ~port "/v1/solve" mismatched).status;
  let black =
    Wire.encode_request
      (Wire.request ~kind:Wire.Solve ~game:Wire.Black ~r:2
         (Dag.make ~n:4 diamond_edges))
  in
  check_int "unserved game: 400" 400 (post ~port "/v1/solve" black).status;
  (* a multiprocessor request past the exact engine's p ≤ 8 reach must
     come back as a structured wire error, not a bare string: the code
     field is what lets clients tell misuse from malformed JSON *)
  let out_of_reach =
    Wire.encode_request
      (Wire.request ~kind:Wire.Solve ~game:(Wire.Multi_rbp 9) ~r:2
         (Dag.make ~n:4 diamond_edges))
  in
  let reply = post ~port "/v1/solve" out_of_reach in
  check_int "p=9 multi: 400" 400 reply.status;
  Alcotest.(check (option string))
    "p=9 multi: coded invalid-argument" (Some "invalid-argument")
    (Wire.decode_error_code reply.body);
  (* a DAG beyond the exact solver's size cap must come back as a
     wire-schema 400, never a dropped connection *)
  let huge =
    Wire.encode_request
      (Wire.request ~kind:Wire.Solve ~game:Wire.Prbp ~r:2
         ((Prbp.Graphs.Tree.make ~k:2 ~depth:6).Prbp.Graphs.Tree.dag))
  in
  let reply = post ~port "/v1/solve" huge in
  check_int "oversized DAG: 400" 400 reply.status;
  check_true "solver size cap reported in the body"
    (Wire.decode_error reply.body <> None)

let test_serve_multi_solve () =
  with_server @@ fun port ->
  let body =
    solve_body ~game:(Wire.Multi_prbp 2) ~r:2 ~want_strategy:true
      diamond_edges 4
  in
  let first = post ~port "/v1/solve" body in
  check_int "status" 200 first.status;
  (match Wire.decode_outcome first.body with
  | Error e -> Alcotest.failf "multi outcome decode: %s" e
  | Ok o -> (
      check_true "optimal" (o.Wire.status = `Optimal);
      check_int "diamond PRBP-MC opt at p=2 r=2" 4 o.Wire.lower;
      match o.Wire.strategy with
      | Some (Wire.Multi_prbp_strategy (p, moves)) ->
          check_int "strategy carries p" 2 p;
          let g = Dag.make ~n:4 diamond_edges in
          check_true "served multi strategy replays at the served cost"
            (Prbp.Multi.P.check (Prbp.Multi.config ~p:2 ~r:2 ()) g moves
            = Ok 4)
      | _ -> Alcotest.fail "no multiprocessor strategy served"));
  let second = post ~port "/v1/solve" body in
  check_true "multi certificates cache"
    (List.assoc_opt "x-prbpd-cache" second.headers = Some "hit")

let test_serve_frontier () =
  with_server @@ fun port ->
  let body =
    Wire.encode_request
      (Wire.request ~kind:Wire.Frontier ~game:(Wire.Multi_prbp 2) ~r:2
         ~rs:[ 2; 3 ] ~want_strategy:true
         (Dag.make ~n:4 diamond_edges))
  in
  let first = post ~port "/v1/frontier" body in
  check_int "status" 200 first.status;
  (match Wire.decode_frontier first.body with
  | Error e -> Alcotest.failf "frontier decode: %s" e
  | Ok f ->
      check_true "game echoed" (f.Wire.game = Wire.Multi_prbp 2);
      check_false "small sweep settles" f.Wire.exhausted;
      check_int "two points" 2 (List.length f.Wire.points);
      List.iter
        (fun (pt : Wire.frontier_point) ->
          check_true "settled" pt.Wire.settled;
          check_true "verified" pt.Wire.verified;
          let expected = if pt.Wire.r = 2 then 4 else 2 in
          check_int
            (Printf.sprintf "r=%d comm" pt.Wire.r)
            expected pt.Wire.comm_lower;
          check_true "closed interval"
            (pt.Wire.comm_upper = Some pt.Wire.comm_lower);
          (* the served witness replays on the requested DAG *)
          match pt.Wire.strategy with
          | Some (Wire.Multi_prbp_strategy (p, moves)) ->
              let g = Dag.make ~n:4 diamond_edges in
              check_true "frontier witness replays"
                (Prbp.Multi.P.check (Prbp.Multi.config ~p ~r:pt.Wire.r ()) g
                   moves
                = Ok expected)
          | _ -> Alcotest.fail "frontier point served without witness")
        f.Wire.points);
  let second = post ~port "/v1/frontier" body in
  check_true "settled fronts cache"
    (List.assoc_opt "x-prbpd-cache" second.headers = Some "hit");
  Alcotest.(check string)
    "cache hit returns the byte-identical front" first.body second.body;
  (* single-processor games have no frontier; the refusal is coded *)
  let bad =
    Wire.encode_request
      (Wire.request ~kind:Wire.Frontier ~game:Wire.Prbp ~r:2
         (Dag.make ~n:4 diamond_edges))
  in
  let reply = post ~port "/v1/frontier" bad in
  check_int "non-multi frontier: 400" 400 reply.status;
  Alcotest.(check (option string))
    "non-multi frontier: coded invalid-argument" (Some "invalid-argument")
    (Wire.decode_error_code reply.body)

let test_serve_stream_and_metrics () =
  with_server @@ fun port ->
  let body =
    solve_body ~r:3 ~stream:true
      [ (0, 1); (0, 2); (1, 3); (2, 3); (1, 4); (2, 4) ]
      5
  in
  let reply = post ~port "/v1/solve" body in
  check_int "stream status" 200 reply.status;
  let lines =
    List.filter (fun l -> String.trim l <> "")
      (String.split_on_char '\n' reply.body)
  in
  check_true "streamed at least start/stop + result" (List.length lines >= 2);
  (* every line but the last is a telemetry event; the last is the outcome *)
  let rec split_last acc = function
    | [] -> Alcotest.fail "empty stream"
    | [ last ] -> (List.rev acc, last)
    | x :: rest -> split_last (x :: acc) rest
  in
  let events, result = split_last [] lines in
  List.iter
    (fun l -> check_ok "telemetry line decodes" (Wire.decode_event l))
    events;
  check_ok "final line is the outcome" (Wire.decode_outcome result);
  let metrics = (get ~port "/metrics").body in
  let has needle =
    let nl = String.length needle and hl = String.length metrics in
    let rec go i = i + nl <= hl && (String.sub metrics i nl = needle || go (i + 1)) in
    go 0
  in
  check_true "requests counter exported" (has "prbpd_requests_total");
  check_true "cache hit counter exported" (has "prbpd_cache_hits_total");
  check_true "cache miss counter exported" (has "prbpd_cache_misses_total");
  check_true "latency histogram exported" (has "prbpd_request_seconds_bucket");
  check_true "per-route histogram exported"
    (has "prbpd_route_request_seconds_bucket");
  match Wire.decode_healthz (get ~port "/healthz").body with
  | Error e -> Alcotest.failf "healthz body is not a wire record: %s" e
  | Ok h ->
      check_int "healthz wire version" Wire.version h.Wire.wire;
      Alcotest.(check string)
        "healthz bench schema" Wire.bench_schema h.Wire.bench;
      check_true "healthz uptime non-negative" (h.Wire.uptime_s >= 0.)

let test_serve_status () =
  with_server @@ fun port ->
  let solve = solve_body ~r:2 ~want_strategy:false diamond_edges 4 in
  check_int "solve ok" 200 (post ~port "/v1/solve" solve).status;
  check_int "repeat solve ok" 200 (post ~port "/v1/solve" solve).status;
  let reply = get ~port "/v1/status" in
  check_int "status 200" 200 reply.status;
  match Wire.decode_status reply.body with
  | Error e -> Alcotest.failf "decode_status: %s" e
  | Ok st ->
      check_true "uptime non-negative" (st.Wire.uptime_s >= 0.);
      check_int "workers reported" 2 st.Wire.workers;
      check_true "requests counted" (st.Wire.requests_total >= 2);
      check_true "the repeat hit the cache" (st.Wire.cache_hits >= 1);
      check_true "solve route latency populated"
        (List.exists
           (fun (rs : Wire.route_stat) ->
             rs.route = "/v1/solve" && rs.count >= 2 && rs.buckets <> [])
           st.Wire.routes);
      check_true "route buckets strictly ascending"
        (List.for_all
           (fun (rs : Wire.route_stat) ->
             let les = List.map fst rs.buckets in
             List.sort_uniq compare les = les)
           st.Wire.routes);
      check_true "recent requests include the solves"
        (List.exists (fun (rq : Wire.req) -> rq.route = "/v1/solve")
           st.Wire.recent);
      check_true "recent requests carry cache and outcome tags"
        (List.exists (fun (rq : Wire.req) -> rq.cache = "hit") st.Wire.recent
        && List.exists
             (fun (rq : Wire.req) -> rq.outcome = "optimal")
             st.Wire.recent);
      check_true "flight accounting sane"
        (st.Wire.flight_seen >= 2 && st.Wire.flight_capacity >= 1)

(* Two overlapping requests must come out as disjoint, well-parented
   traces: per-context span ids (restarting at 0), parent links that
   never cross requests, distinct trace ids. *)
let test_serve_trace_isolation () =
  with_server ~workers:4 @@ fun port ->
  let module Flight = Prbp.Obs.Flight in
  Flight.reset ();
  let bracket r =
    Wire.encode_request
      (Wire.request ~kind:Wire.Bracket ~game:Wire.Rbp ~r
         (Dag.make ~n:4 diamond_edges))
  in
  let d1 = Domain.spawn (fun () -> (post ~port "/v1/bracket" (bracket 3)).status)
  and d2 =
    Domain.spawn (fun () -> (post ~port "/v1/bracket" (bracket 4)).status)
  in
  check_int "first concurrent bracket" 200 (Domain.join d1);
  check_int "second concurrent bracket" 200 (Domain.join d2);
  let entries =
    List.filter
      (fun (e : Flight.entry) -> e.summary.route = "/v1/bracket")
      (Flight.slowest ())
  in
  check_int "both requests retained with spans" 2 (List.length entries);
  (match entries with
  | [ a; b ] ->
      check_true "distinct trace ids"
        (a.Flight.summary.trace_id <> b.Flight.summary.trace_id)
  | _ -> ());
  List.iter
    (fun (e : Flight.entry) ->
      let module Span = Prbp.Obs.Span in
      let ss = e.spans in
      check_true "request recorded spans" (ss <> []);
      check_true "span ids restart at 0 per request"
        (List.exists (fun s -> s.Span.id = 0) ss);
      check_true "parents stay within the request"
        (List.for_all
           (fun s ->
             s.Span.parent = -1
             || List.exists (fun p -> p.Span.id = s.Span.parent) ss)
           ss);
      check_true "root span is the http dispatch"
        (List.exists
           (fun s ->
             s.Span.parent = -1 && s.Span.name = "http POST /v1/bracket")
           ss))
    entries

let test_serve_concurrent_clients () =
  with_server ~workers:4 ~queue:64 @@ fun port ->
  let solve = solve_body ~r:2 ~want_strategy:true diamond_edges 4 in
  let bracket =
    Wire.encode_request
      (Wire.request ~kind:Wire.Bracket ~game:Wire.Rbp ~r:3
         (Dag.make ~n:4 diamond_edges))
  in
  (* prime the cache so the stress mix exercises the hit path too *)
  check_int "prime solve" 200 (post ~port "/v1/solve" solve).status;
  check_int "prime bracket" 200 (post ~port "/v1/bracket" bracket).status;
  let clients =
    Array.init 16 (fun i ->
        Domain.spawn (fun () ->
            let path, body =
              if i mod 2 = 0 then ("/v1/solve", solve)
              else ("/v1/bracket", bracket)
            in
            let ok = ref 0 in
            for _ = 1 to 8 do
              let reply = post ~port path body in
              if reply.status = 200 then incr ok
            done;
            !ok))
  in
  let total = Array.fold_left (fun acc d -> acc + Domain.join d) 0 clients in
  check_int "every concurrent request answered 200" (16 * 8) total

let suite =
  [
    ( "serve",
      [
        case "pool: bounded admission" test_pool_admission;
        case "pool: survives raising jobs" test_pool_survives_raising_jobs;
        case "cache: LRU contract" test_cache_lru;
        case "http: parses requests" test_http_parse;
        case "http: rejects malformed/oversized" test_http_rejects;
        slow_case "serve: solve, cache hit, content addressing"
          test_serve_solve_and_cache;
        slow_case "serve: bracket certificates" test_serve_bracket;
        slow_case "serve: deadline maps to Bounded"
          test_serve_deadline_maps_to_bounded;
        slow_case "serve: 503 at capacity" test_serve_admission_503;
        slow_case "serve: rejections" test_serve_rejections;
        slow_case "serve: multiprocessor certificates" test_serve_multi_solve;
        slow_case "serve: frontier round-trip" test_serve_frontier;
        slow_case "serve: streaming + metrics" test_serve_stream_and_metrics;
        slow_case "serve: /v1/status live snapshot" test_serve_status;
        slow_case "serve: concurrent traces stay disjoint"
          test_serve_trace_isolation;
        slow_case "serve: concurrent clients" test_serve_concurrent_clients;
      ] );
  ]

open Test_util
module Dag = Prbp.Dag
module Rbp = Prbp.Rbp
module Pg = Prbp.Prbp_game

let rcfg r = Rbp.config ~r ()

let pcfg r = Pg.config ~r ()

let test_fig1_prop42 () =
  (* Proposition 4.2: OPT_RBP = 3 and OPT_PRBP = 2 at r = 4 *)
  let g, _ = Prbp.Graphs.Fig1.full () in
  check_int "OPT_RBP" 3 (Test_util.opt_rbp (rcfg 4) g);
  check_int "OPT_PRBP" 2 (Test_util.opt_prbp (pcfg 4) g)

let test_diamond () =
  let g = Prbp.Graphs.Basic.diamond () in
  check_int "rbp r=3" 2 (Test_util.opt_rbp (rcfg 3) g);
  check_int "prbp r=3" 2 (Test_util.opt_prbp (pcfg 3) g);
  (* PRBP pebbles the diamond even at r = 2; RBP cannot *)
  check_true "rbp r=2 impossible"
    (Test_util.opt_rbp_opt (rcfg 2) g = None);
  check_true "prbp r=2 possible"
    (Test_util.opt_prbp_opt (pcfg 2) g <> None)

let test_fan_in_below_delta () =
  (* Section 3: PRBP admits pebblings for r < Δin + 1 *)
  let g = Prbp.Graphs.Basic.fan_in 5 in
  check_true "rbp needs r >= 6" (Test_util.opt_rbp_opt (rcfg 5) g = None);
  check_int "rbp at r=6" 6 (Test_util.opt_rbp (rcfg 6) g);
  check_int "prbp at r=2 trivial" 6 (Test_util.opt_prbp (pcfg 2) g)

let test_path_costs_trivial () =
  let g = Prbp.Graphs.Basic.path 6 in
  check_int "rbp" 2 (Test_util.opt_rbp (rcfg 2) g);
  check_int "prbp" 2 (Test_util.opt_prbp (pcfg 2) g)

let test_prop41_on_small_dags () =
  (* Proposition 4.1: OPT_PRBP <= OPT_RBP whenever both are defined *)
  List.iter
    (fun g ->
      if Dag.n_nodes g <= 12 && Dag.n_edges g <= 40 then begin
        let r = Dag.max_in_degree g + 1 in
        (* skip the rare instances whose PRBP state space exceeds the
           search budget; the claim is verified on the rest *)
        match
          ( tolerant (Prbp.Exact_rbp.solve (rcfg r) g),
            tolerant (Prbp.Exact_prbp.solve (pcfg r) g) )
        with
        | Some (Some rb), Some (Some pb) ->
            check_true "PRBP <= RBP" (pb <= rb)
        | _ -> ()
      end)
    (Lazy.force random_dags)

let test_binary_tree_depth3 () =
  (* Proposition 4.5 at the exactly-solvable size *)
  let t = Prbp.Graphs.Tree.make ~k:2 ~depth:3 in
  let g = t.Prbp.Graphs.Tree.dag in
  check_int "rbp matches A.2" 15 (Test_util.opt_rbp (rcfg 3) g);
  check_int "prbp matches A.2" 11 (Test_util.opt_prbp (pcfg 3) g)

let test_zipper_small_gap () =
  (* Proposition 4.4 flavor at an exactly solvable size: d=3, r=5 *)
  let z = Prbp.Graphs.Zipper.make ~d:3 ~len:4 in
  let g = z.Prbp.Graphs.Zipper.dag in
  let rb = Test_util.opt_rbp (rcfg 5) g in
  let pb =
    Test_util.opt_prbp ~budget:(S.Budget.states 20_000_000) (pcfg 5) g
  in
  check_true "gap exists" (pb < rb)

let test_chained_fig1_growth () =
  (* Proposition 4.7: OPT_PRBP stays 2; OPT_RBP grows linearly *)
  let costs =
    List.map
      (fun c ->
        let g = Prbp.Graphs.Fig1.chained ~copies:c in
        check_int "prbp constant" 2 (Test_util.opt_prbp (pcfg 4) g);
        Test_util.opt_rbp (rcfg 4) g)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "rbp linear (2c+1)" [ 3; 5; 7 ] costs

let test_strategy_reconstruction_rbp () =
  let g, _ = Prbp.Graphs.Fig1.full () in
  match Test_util.rbp_strategy (rcfg 4) g with
  | None -> Alcotest.fail "no strategy"
  | Some (c, moves) ->
      check_int "cost" 3 c;
      check_int "replay" 3 (rbp_cost ~r:4 g moves)

let test_strategy_reconstruction_prbp () =
  let g, _ = Prbp.Graphs.Fig1.full () in
  match Test_util.prbp_strategy (pcfg 4) g with
  | None -> Alcotest.fail "no strategy"
  | Some (c, moves) ->
      check_int "cost" 2 c;
      check_int "replay" 2 (prbp_cost ~r:4 g moves)

let test_larger_r_never_hurts () =
  let g, _ = Prbp.Graphs.Fig1.full () in
  let r4 = Test_util.opt_prbp (pcfg 4) g in
  let r6 = Test_util.opt_prbp (pcfg 6) g in
  check_true "monotone in r" (r6 <= r4)

let test_max_states_budget () =
  (* a blown state budget is an outcome, not an exception: the solver
     returns a certified Bounded interval *)
  let g = Prbp.Graphs.Basic.pyramid 3 in
  match Prbp.Exact_rbp.solve ~budget:(S.Budget.states 10) (rcfg 4) g with
  | S.Bounded b ->
      check_true "stopped on max-states" (b.S.stopped = S.Max_states);
      check_true "lower bound non-trivial" (b.S.lower >= 1)
  | S.Optimal _ | S.Unsolvable _ -> Alcotest.fail "expected Bounded"

let test_exact_matches_heuristic_bound () =
  (* the heuristic is an upper bound for the optimum everywhere *)
  List.iter
    (fun g ->
      if Dag.n_nodes g <= 12 then begin
        let r = max 3 (Dag.max_in_degree g + 1) in
        let h = Prbp.Heuristic.rbp_cost ~r g in
        let e = Test_util.opt_rbp (rcfg r) g in
        check_true "heuristic >= exact" (h >= e)
      end)
    (Lazy.force random_dags)

(* Branch-and-bound soundness: pruned and unpruned searches agree on
   the optimum (and on solvability) for random small DAGs, in both
   games.  The bound is seeded from the heuristic and the residual
   estimate must stay admissible, so any disagreement here is a solver
   bug, not flakiness. *)
let qtest_prune_agrees =
  QCheck.Test.make ~count:40 ~name:"pruned = unpruned optimum (random DAGs)"
    QCheck.(
      triple (int_bound 1000) (int_range 2 4) (int_range 2 3))
    (fun (seed, layers, width) ->
      (* <= 12 nodes, small enough for both exact searches *)
      let g =
        Prbp.Graphs.Random_dag.make ~seed ~max_in_degree:3 ~layers ~width ()
      in
      let r = max 2 (min 4 (Dag.max_in_degree g + 1)) in
      let agree a b =
        (* a truncated side proves nothing — skip that instance *)
        match (tolerant a, tolerant b) with
        | Some x, Some y -> x = y
        | _ -> true
      in
      let rbp_ok =
        agree
          (Prbp.Exact_rbp.solve ~prune:true (rcfg r) g)
          (Prbp.Exact_rbp.solve ~prune:false (rcfg r) g)
      in
      let prbp_ok =
        Dag.n_edges g > 40
        || agree
             (Prbp.Exact_prbp.solve ~prune:true (pcfg r) g)
             (Prbp.Exact_prbp.solve ~prune:false (pcfg r) g)
      in
      rbp_ok && prbp_ok)

let test_matvec_m2_exact () =
  (* the m=2 matvec DAG (12 nodes, 12 edges) is exactly solvable:
     PRBP achieves the trivial cost already at r = 5 *)
  let mv = Prbp.Graphs.Matvec.make ~m:2 in
  let g = mv.Prbp.Graphs.Matvec.dag in
  check_int "prbp trivial" (Prbp.Graphs.Matvec.prbp_opt ~m:2)
    (Test_util.opt_prbp (pcfg 5) g)

let suite =
  [
    ( "exact",
      [
        case "Prop 4.2: fig1 optima" test_fig1_prop42;
        case "diamond optima incl. r=2" test_diamond;
        case "fan-in below Δin+1" test_fan_in_below_delta;
        case "path optima" test_path_costs_trivial;
        case "Prop 4.1 on random DAGs" test_prop41_on_small_dags;
        case "Prop 4.5: binary tree d=3" test_binary_tree_depth3;
        slow_case "Prop 4.4 flavor: zipper gap" test_zipper_small_gap;
        case "Prop 4.7: chained growth" test_chained_fig1_growth;
        case "RBP strategy reconstruction" test_strategy_reconstruction_rbp;
        case "PRBP strategy reconstruction" test_strategy_reconstruction_prbp;
        case "optimum monotone in r" test_larger_r_never_hurts;
        case "state budget enforced" test_max_states_budget;
        case "heuristic upper-bounds exact" test_exact_matches_heuristic_bound;
        case "matvec m=2 exact" test_matvec_m2_exact;
        QCheck_alcotest.to_alcotest qtest_prune_agrees;
      ] );
  ]

(* appended: optimality catalog — the paper's constructive strategies
   are not merely valid with the claimed costs; wherever the state
   space permits exhaustive search, they are exactly optimal. *)

let test_strategy_optimality_catalog () =
  let pcheck g r moves =
    match Prbp.Prbp_game.check (pcfg r) g moves with
    | Ok c -> c
    | Error e -> Alcotest.failf "invalid: %s" e
  in
  let rcheck g r moves =
    match Prbp.Rbp.check (rcfg r) g moves with
    | Ok c -> c
    | Error e -> Alcotest.failf "invalid: %s" e
  in
  (* zipper d=3, len=3: both strategies exactly optimal *)  
  let z = Prbp.Graphs.Zipper.make ~d:3 ~len:3 in
  let zg = z.Prbp.Graphs.Zipper.dag in
  check_int "zipper rbp optimal"
    (Test_util.opt_rbp (rcfg 5) zg)
    (rcheck zg 5 (Prbp.Strategies.zipper_rbp z));
  (* collection gadget d=3, len=6 at full capacity *)
  let c = Prbp.Graphs.Collect.make ~d:3 ~len:6 in
  let cg = c.Prbp.Graphs.Collect.dag in
  check_int "collect full optimal"
    (Test_util.opt_rbp (rcfg 5) cg)
    (rcheck cg 5 (Prbp.Strategies.collect_full c));
  check_int "collect full also PRBP-optimal"
    (Test_util.opt_prbp (pcfg 5) cg)
    (pcheck cg 5
       (Prbp.Move.rbp_to_prbp cg (Prbp.Strategies.collect_full c)));
  (* lemma54 with tiny groups *)
  let l = Prbp.Graphs.Lemma54.make ~group_size:1 in
  let lg = l.Prbp.Graphs.Lemma54.dag in
  check_int "lemma54 trivial = optimal"
    (Test_util.opt_prbp (pcfg 3) lg)
    (pcheck lg 3 (Prbp.Strategies.lemma54_prbp l));
  (* matvec m=2 streaming *)
  let mv = Prbp.Graphs.Matvec.make ~m:2 in
  let mg = mv.Prbp.Graphs.Matvec.dag in
  check_int "matvec streaming optimal"
    (Test_util.opt_prbp (pcfg 5) mg)
    (pcheck mg 5 (Prbp.Strategies.matvec_prbp mv));
  (* k-ary tree strategies at the exactly solvable sizes *)
  let t32 = Prbp.Graphs.Tree.make ~k:3 ~depth:2 in
  check_int "ternary tree rbp optimal"
    (Test_util.opt_rbp (rcfg 4) t32.Prbp.Graphs.Tree.dag)
    (rcheck t32.Prbp.Graphs.Tree.dag 4 (Prbp.Strategies.tree_rbp t32));
  check_int "ternary tree prbp optimal"
    (Test_util.opt_prbp (pcfg 4) t32.Prbp.Graphs.Tree.dag)
    (pcheck t32.Prbp.Graphs.Tree.dag 4 (Prbp.Strategies.tree_prbp t32))

let test_horner_strategy_optimal () =
  List.iter
    (fun n ->
      let g = Prbp.Graphs.Basic.horner n in
      check_int "optimal"
        (Test_util.opt_prbp (pcfg 3) g)
        (match
           Prbp.Prbp_game.check (pcfg 3) g (Prbp.Strategies.horner_prbp g)
         with
        | Ok c -> c
        | Error e -> Alcotest.failf "invalid: %s" e))
    [ 2; 3; 4 ]

let suite =
  suite
  @ [
      ( "optimality catalog",
        [
          slow_case "paper strategies are exactly optimal"
            test_strategy_optimality_catalog;
          case "Horner strategy exactly optimal" test_horner_strategy_optimal;
        ] );
    ]

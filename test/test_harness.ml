open Test_util
module Table = Prbp.Table
module Experiment = Prbp.Experiment

let test_table_render () =
  let t = Table.make ~header:[ "name"; "cost" ] in
  Table.add_row t [ "fig1"; "3" ];
  Table.add_row t [ "zipper"; "16" ];
  let s = Table.render t in
  check_true "header present" (String.length s > 0);
  let lines = String.split_on_char '\n' (String.trim s) in
  check_int "four lines" 4 (List.length lines);
  check_true "aligned rule"
    (String.for_all (fun c -> c = '-' || c = ' ') (List.nth lines 1))

let test_table_width_mismatch () =
  let t = Table.make ~header:[ "a"; "b" ] in
  check_true "rejected"
    (match Table.add_row t [ "only one" ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_table_rowf () =
  let t = Table.make ~header:[ "m"; "cost"; "bound" ] in
  Table.add_rowf t "%d|%d|%.2f" 4 24 23.08;
  let s = Table.render t in
  check_true "formatted" (String.length s > 0)

let test_csv () =
  let t = Table.make ~header:[ "a"; "b" ] in
  Table.add_row t [ "x,y"; "plain" ];
  let csv = Table.to_csv t in
  check_true "quoted comma"
    (String.length csv > 0
    &&
    match String.index_opt csv '"' with Some _ -> true | None -> false)

let test_experiment_run () =
  let e =
    Experiment.make ~id:"T1" ~paper:"test" ~claim:"1 = 1" (fun ppf (_ : Experiment.ctx) ->
        Format.fprintf ppf "checking@.";
        true)
  in
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  let ok = Experiment.run_one ppf e in
  Format.pp_print_flush ppf ();
  check_true "confirmed" ok;
  let s = Buffer.contents buf in
  check_true "id printed"
    (String.length s > 0
    &&
    let rec contains i =
      i + 2 <= String.length s && (String.sub s i 2 = "T1" || contains (i + 1))
    in
    contains 0)

let test_experiment_run_all () =
  let mk id ok =
    Experiment.make ~id ~paper:"p" ~claim:"c" (fun _ _ -> ok)
  in
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  let confirmed, total =
    Experiment.run_all ppf [ mk "A" true; mk "B" false; mk "C" true ]
  in
  check_int "confirmed" 2 confirmed;
  check_int "total" 3 total

let suite =
  [
    ( "harness",
      [
        case "table rendering" test_table_render;
        case "row width checked" test_table_width_mismatch;
        case "formatted rows" test_table_rowf;
        case "csv escaping" test_csv;
        case "experiment run" test_experiment_run;
        case "experiment aggregation" test_experiment_run_all;
      ] );
  ]

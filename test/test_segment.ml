(* lib/bounds/Segment: the constructive partitioners must only ever
   emit partitions that the exact Spart checkers accept — on named
   graphs, and property-tested over random DAGs. *)
open Test_util
module Dag = Prbp.Dag
module Bitset = Prbp.Bitset
module Segment = Prbp.Bounds.Segment

let flavors = [ Segment.Spartition; Segment.Dominator; Segment.Edge ]

(* The checker a Segment claims to have passed, invoked directly on the
   raw classes — independent of Segment.validate. *)
let spart_check flavor g ~s classes =
  match flavor with
  | Segment.Spartition -> Prbp.Spart.is_spartition g ~s classes
  | Segment.Dominator -> Prbp.Spart.is_dominator_partition g ~s classes
  | Segment.Edge -> Prbp.Spart.is_edge_partition g ~s classes

let seg_exn what = function
  | Ok seg -> seg
  | Error e -> Alcotest.failf "%s: %s" what e

let covers_everything g (seg : Segment.t) =
  let total =
    match seg.Segment.flavor with
    | Segment.Edge -> Dag.n_edges g
    | Segment.Spartition | Segment.Dominator -> Dag.n_nodes g
  in
  let counted =
    Array.fold_left
      (fun acc c -> acc + Bitset.cardinal c)
      0 seg.Segment.classes
  in
  check_int "classes cover every element exactly once" total counted

let test_greedy_named () =
  let graphs =
    [
      ("diamond", Prbp.Graphs.Basic.diamond ());
      ("pyramid(3)", Prbp.Graphs.Basic.pyramid 3);
      ("fan_out(5)", Prbp.Graphs.Basic.fan_out 5);
      ("fig1", fst (Prbp.Graphs.Fig1.full ()));
      ("fft(8)", (Prbp.Graphs.Fft.make ~m:8).Prbp.Graphs.Fft.dag);
    ]
  in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun flavor ->
          List.iter
            (fun s ->
              let what =
                Printf.sprintf "%s %s s=%d" name
                  (Segment.flavor_label flavor)
                  s
              in
              let seg = seg_exn what (Segment.greedy ~flavor g ~s) in
              check_true (what ^ ": not marked minimal")
                (not seg.Segment.minimal);
              check_ok what (spart_check flavor g ~s seg.Segment.classes);
              covers_everything g seg)
            [ 1; 2; 3 ])
        flavors)
    graphs

let test_level_cut () =
  let g = (Prbp.Graphs.Fft.make ~m:8).Prbp.Graphs.Fft.dag in
  List.iter
    (fun flavor ->
      List.iter
        (fun s ->
          let what =
            Printf.sprintf "level_cut fft(8) %s s=%d"
              (Segment.flavor_label flavor)
              s
          in
          let seg = seg_exn what (Segment.level_cut ~flavor g ~s) in
          check_ok what (spart_check flavor g ~s seg.Segment.classes);
          covers_everything g seg)
        [ 1; 2; 4 ])
    [ Segment.Spartition; Segment.Dominator ];
  check_err "level_cut rejects Edge"
    (Segment.level_cut ~flavor:Segment.Edge g ~s:2)

let test_rejects_s0 () =
  let g = Prbp.Graphs.Basic.diamond () in
  List.iter
    (fun flavor ->
      check_err "greedy s=0" (Segment.greedy ~flavor g ~s:0);
      if flavor <> Segment.Edge then
        check_err "level_cut s=0" (Segment.level_cut ~flavor g ~s:0))
    flavors

let test_of_minpart_roundtrip () =
  (* wrap an exact Minpart witness: it must validate and carry the
     minimal flag; Segment.validate must agree with the direct check *)
  let g = Prbp.Graphs.Basic.fan_out 5 in
  let s = 2 in
  match Prbp.Minpart.spartition g ~s with
  | Prbp.Minpart.Minimum { classes; witness; _ } ->
      let seg =
        seg_exn "of_minpart"
          (Segment.of_minpart Segment.Spartition g ~s witness)
      in
      check_true "marked minimal" seg.Segment.minimal;
      check_int "class count preserved" classes (Segment.n_classes seg);
      check_ok "re-validates" (Segment.validate g seg)
  | _ -> Alcotest.fail "fan_out(5) must have an exact s=2 partition"

let test_of_minpart_rejects_invalid () =
  (* one class holding all of fan_out(5) violates the terminal bound at
     s = 2, so the wrapper must refuse it *)
  let g = Prbp.Graphs.Basic.fan_out 5 in
  let all = Bitset.create (Dag.n_nodes g) in
  Bitset.fill all;
  check_err "invalid witness rejected"
    (Segment.of_minpart Segment.Spartition g ~s:2 [| all |])

let test_greedy_never_beats_exact () =
  (* constructive class counts only upper-bound MIN — confirm the
     inequality holds where the exact search can run *)
  List.iter
    (fun g ->
      if Dag.n_nodes g <= 10 then
        let s = 3 in
        match Prbp.Minpart.spartition g ~s with
        | Prbp.Minpart.Minimum { classes; _ } ->
            let seg = seg_exn "greedy" (Segment.greedy g ~s) in
            check_true "greedy >= MIN" (Segment.n_classes seg >= classes)
        | _ -> ())
    (Lazy.force random_dags)

let gen_dag =
  QCheck.make
    ~print:(fun (seed, layers, width, s) ->
      Printf.sprintf "seed=%d layers=%d width=%d s=%d" seed layers width s)
    QCheck.Gen.(
      quad (int_range 1 10_000) (int_range 2 4) (int_range 1 3)
        (int_range 1 4))

let dag_of (seed, layers, width, _) =
  Prbp.Graphs.Random_dag.make ~seed ~layers ~width ~density:0.35
    ~max_in_degree:4 ()

let prop_greedy_valid =
  qcase ~count:60 "greedy segments pass the exact Spart checkers" gen_dag
    (fun ((_, _, _, s) as params) ->
      let g = dag_of params in
      List.for_all
        (fun flavor ->
          match Segment.greedy ~flavor g ~s with
          | Error _ -> false
          | Ok seg -> spart_check flavor g ~s seg.Segment.classes = Ok ())
        flavors)

let prop_level_cut_valid =
  qcase ~count:60 "level cuts pass the exact Spart checkers" gen_dag
    (fun ((_, _, _, s) as params) ->
      let g = dag_of params in
      List.for_all
        (fun flavor ->
          match Segment.level_cut ~flavor g ~s with
          | Error _ -> false
          | Ok seg -> spart_check flavor g ~s seg.Segment.classes = Ok ())
        [ Segment.Spartition; Segment.Dominator ])

let test_dot_partition_rendering () =
  let g = Prbp.Graphs.Basic.pyramid 3 in
  let seg = seg_exn "greedy" (Segment.greedy g ~s:3) in
  let dot = Prbp.Dot.to_string ~classes:seg.Segment.classes g in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_true "filled nodes" (contains "fillcolor" dot);
  check_true "class tooltips" (contains "class 0" dot);
  let eseg = seg_exn "edges" (Segment.greedy ~flavor:Segment.Edge g ~s:3) in
  let edot = Prbp.Dot.to_string ~edge_classes:eseg.Segment.classes g in
  check_true "colored edges" (contains "penwidth" edot)

let suite =
  [
    ( "segment",
      [
        case "greedy on named graphs" test_greedy_named;
        case "level cuts on layered DAGs" test_level_cut;
        case "s=0 rejected" test_rejects_s0;
        case "minpart witness roundtrip" test_of_minpart_roundtrip;
        case "invalid witness rejected" test_of_minpart_rejects_invalid;
        case "greedy never beats exact MIN" test_greedy_never_beats_exact;
        prop_greedy_valid;
        prop_level_cut_valid;
        case "dot partition rendering" test_dot_partition_rendering;
      ] );
  ]

open Test_util
module Dag = Prbp.Dag
module S = Prbp.Strategies
module G = Prbp.Graphs

let test_fig1_strategies () =
  let g, ids = G.Fig1.full () in
  check_int "A.1 RBP" 3 (rbp_cost ~r:4 g (S.fig1_rbp ids));
  check_int "A.1 PRBP" 2 (prbp_cost ~r:4 g (S.fig1_prbp ids))

let test_chained_strategies () =
  List.iter
    (fun copies ->
      let g = G.Fig1.chained ~copies in
      check_int "prbp stays 2" 2
        (prbp_cost ~r:4 g (S.fig1_chained_prbp ~copies));
      check_int "rbp 2c+1"
        ((2 * copies) + 1)
        (rbp_cost ~r:4 g (S.fig1_chained_rbp ~copies)))
    [ 1; 2; 3; 10; 50 ]

let test_chained_rbp_matches_exact () =
  (* the strategy is not just valid, it is optimal at small sizes *)
  List.iter
    (fun copies ->
      let g = G.Fig1.chained ~copies in
      check_int "matches exact"
        (Test_util.opt_rbp (Prbp.Rbp.config ~r:4 ()) g)
        (rbp_cost ~r:4 g (S.fig1_chained_rbp ~copies)))
    [ 1; 2; 3 ]

let test_matvec () =
  List.iter
    (fun m ->
      let mv = G.Matvec.make ~m in
      let cost = prbp_cost ~r:(m + 3) mv.G.Matvec.dag (S.matvec_prbp mv) in
      check_int "trivial cost achieved" (G.Matvec.prbp_opt ~m) cost;
      (* Proposition 4.3: below the RBP lower bound for r <= 2m *)
      check_true "beats RBP bound" (cost < G.Matvec.rbp_lower ~m))
    [ 3; 4; 5; 8 ]

let test_matvec_respects_capacity () =
  (* the streaming strategy genuinely needs only m+3 pebbles *)
  let mv = G.Matvec.make ~m:5 in
  let t =
    Prbp.Prbp_game.run_exn
      (Prbp.Prbp_game.config ~r:8 ())
      mv.G.Matvec.dag (S.matvec_prbp mv)
  in
  check_int "peak is m+3" 8 (Prbp.Prbp_game.max_red_seen t)

let test_zipper () =
  List.iter
    (fun (d, len) ->
      let z = G.Zipper.make ~d ~len in
      let rb = rbp_cost ~r:(d + 2) z.G.Zipper.dag (S.zipper_rbp z) in
      let pb = prbp_cost ~r:(d + 2) z.G.Zipper.dag (S.zipper_prbp z) in
      check_int "rbp formula" (S.zipper_rbp_cost ~d ~len) rb;
      check_int "prbp formula" (S.zipper_prbp_cost ~d ~len) pb;
      (* Proposition 4.4: strict win for d >= 3 *)
      if d >= 3 && len >= 3 then check_true "prbp wins" (pb < rb))
    [ (3, 4); (3, 9); (4, 7); (5, 12); (2, 6) ]

let test_trees () =
  List.iter
    (fun (k, depth) ->
      let t = G.Tree.make ~k ~depth in
      let g = t.G.Tree.dag in
      check_int "rbp closed form"
        (G.Tree.rbp_opt ~k ~depth)
        (rbp_cost ~r:(k + 1) g (S.tree_rbp t));
      check_int "prbp closed form"
        (G.Tree.prbp_opt ~k ~depth)
        (prbp_cost ~r:(k + 1) g (S.tree_prbp t)))
    [ (2, 1); (2, 2); (2, 3); (2, 6); (3, 2); (3, 3); (3, 4); (4, 4); (5, 3) ]

let test_tree_peak_usage () =
  (* the PRBP strategy truly never exceeds k+1 red pebbles *)
  let t = G.Tree.make ~k:3 ~depth:4 in
  let eng =
    Prbp.Prbp_game.run_exn
      (Prbp.Prbp_game.config ~r:4 ())
      t.G.Tree.dag (S.tree_prbp t)
  in
  check_int "peak k+1" 4 (Prbp.Prbp_game.max_red_seen eng)

let test_collect () =
  let c = G.Collect.make ~d:5 ~len:60 in
  let g = c.G.Collect.dag in
  check_int "full strategy = trivial" (Dag.trivial_cost g)
    (rbp_cost ~r:7 g (S.collect_full c));
  let capped = prbp_cost ~r:6 g (S.collect_capped c) in
  check_int "capped formula" (S.collect_capped_cost ~d:5 ~len:60) capped;
  (* Proposition 4.6: any capped strategy pays at least len/(2d) *)
  check_true "respects the lower bound"
    (capped >= G.Collect.lower_bound_capped c);
  (* capped strategy indeed uses at most d+1 pebbles *)
  let eng =
    Prbp.Prbp_game.run_exn (Prbp.Prbp_game.config ~r:6 ()) g
      (S.collect_capped c)
  in
  check_int "peak d+1" 6 (Prbp.Prbp_game.max_red_seen eng)

let test_lemma54 () =
  List.iter
    (fun h ->
      let l = G.Lemma54.make ~group_size:h in
      check_int "trivial cost 8" 8
        (prbp_cost ~r:3 l.G.Lemma54.dag (S.lemma54_prbp l)))
    [ 1; 5; 40 ]

let test_matmul_tiled () =
  List.iter
    (fun (m1, m2, m3, r) ->
      let mm = G.Matmul.make ~m1 ~m2 ~m3 in
      let ti, tk, tj = S.matmul_tile_for ~r ~m1 ~m2 ~m3 in
      let cost = prbp_cost ~r mm.G.Matmul.dag (S.matmul_tiled ~ti ~tk ~tj mm) in
      check_true "above trivial" (cost >= Dag.trivial_cost mm.G.Matmul.dag);
      check_true "above the 6.10 bound"
        (float_of_int cost >= G.Matmul.lower_bound mm ~r))
    [ (4, 4, 4, 8); (6, 6, 6, 14); (5, 3, 4, 28); (2, 7, 2, 10) ]

let test_matmul_tiles_fit () =
  let mm = G.Matmul.make ~m1:8 ~m2:8 ~m3:8 in
  let r = 30 in
  let ti, tk, tj = S.matmul_tile_for ~r ~m1:8 ~m2:8 ~m3:8 in
  let eng =
    Prbp.Prbp_game.run_exn
      (Prbp.Prbp_game.config ~r ())
      mm.G.Matmul.dag
      (S.matmul_tiled ~ti ~tk ~tj mm)
  in
  check_true "peak within r" (Prbp.Prbp_game.max_red_seen eng <= r)

let test_attention_tiles () =
  (* large cache: full-d tiles *)
  let ti, tk, tj = S.attention_tiles ~r:200 ~m:16 ~d:4 in
  check_int "inner full" 4 tk;
  check_true "square row/col blocks" (ti = tj && ti >= 4);
  (* small cache: matmul tiling *)
  let ti', tk', tj' = S.attention_tiles ~r:13 ~m:16 ~d:4 in
  check_true "small tiles" (ti' <= 2 && tk' <= 2 && tj' <= 2)

let test_attention_strategy_runs () =
  let m = 6 and d = 2 in
  let mm = G.Attention.qkt ~m ~d in
  let r = 40 in
  let ti, tk, tj = S.attention_tiles ~r ~m ~d in
  let cost = prbp_cost ~r mm.G.Matmul.dag (S.matmul_tiled ~ti ~tk ~tj mm) in
  check_true "above 6.11 bound"
    (float_of_int cost >= G.Attention.lower_bound ~m ~d ~r)

let test_fft_blocked () =
  List.iter
    (fun (m, r) ->
      let f = G.Fft.make ~m in
      let cost = rbp_cost ~r f.G.Fft.dag (S.fft_blocked ~r f) in
      check_true "above the 6.9 bound"
        (float_of_int cost >= G.Fft.lower_bound f ~r);
      (* also valid in PRBP at the same cost (Prop 4.1) *)
      let p = Prbp.Move.rbp_to_prbp f.G.Fft.dag (S.fft_blocked ~r f) in
      check_int "translates" cost (prbp_cost ~r f.G.Fft.dag p))
    [ (8, 4); (16, 6); (16, 18); (64, 10); (64, 34) ]

let test_fft_blocked_peak () =
  let f = G.Fft.make ~m:32 in
  let r = 10 in
  let eng =
    Prbp.Rbp.run_exn (Prbp.Rbp.config ~r ()) f.G.Fft.dag (S.fft_blocked ~r f)
  in
  (* sub-butterfly width 2^⌊log2(r-2)⌋ = 8, plus the working pair *)
  check_int "peak w+2" 10 (Prbp.Rbp.max_red_seen eng)

let test_fft_cost_scales_with_log_r () =
  (* doubling k (via r) roughly halves the non-trivial I/O *)
  let f = G.Fft.make ~m:256 in
  let c1 = rbp_cost ~r:4 f.G.Fft.dag (S.fft_blocked ~r:4 f) in
  let c2 = rbp_cost ~r:18 f.G.Fft.dag (S.fft_blocked ~r:18 f) in
  check_true "larger cache helps markedly" (c2 * 3 <= c1 * 2)

let suite =
  [
    ( "strategies",
      [
        case "fig1 (A.1)" test_fig1_strategies;
        case "Prop 4.7 chains" test_chained_strategies;
        case "chained RBP strategy optimal" test_chained_rbp_matches_exact;
        case "Prop 4.3 matvec streaming" test_matvec;
        case "matvec peak m+3" test_matvec_respects_capacity;
        case "Prop 4.4 zipper" test_zipper;
        case "A.2 k-ary trees" test_trees;
        case "tree peak k+1" test_tree_peak_usage;
        case "Prop 4.6 collection gadget" test_collect;
        case "Lemma 5.4 trivial pebbling" test_lemma54;
        case "Thm 6.10 tiled matmul" test_matmul_tiled;
        case "matmul tiles fit in r" test_matmul_tiles_fit;
        case "Thm 6.11 attention tiles" test_attention_tiles;
        case "attention strategy vs bound" test_attention_strategy_runs;
        case "Thm 6.9 blocked FFT" test_fft_blocked;
        case "FFT peak w+2" test_fft_blocked_peak;
        case "FFT cost scales with log r" test_fft_cost_scales_with_log_r;
      ] );
  ]

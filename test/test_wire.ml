(* The versioned wire schema: decode ∘ encode = id on every record
   family, hardened decoding, and the content-addressed canonical form
   behind the prbpd cache (Dag.hash / Serialize.canonical). *)

open Test_util
module Wire = Prbp.Wire
module Json = Prbp.Wire.Json
module Dag = Prbp.Dag

(* ------------------------------------------------------------------ *)
(* Generators *)

let gen_dag_params =
  QCheck.make
    ~print:(fun (seed, layers, width) ->
      Printf.sprintf "seed=%d layers=%d width=%d" seed layers width)
    QCheck.Gen.(triple (int_range 1 100_000) (int_range 2 4) (int_range 1 4))

let dag_of (seed, layers, width) =
  Prbp.Graphs.Random_dag.make ~seed ~layers ~width ~density:0.4
    ~max_in_degree:3 ()

let gen_game =
  QCheck.Gen.(
    oneof
      [
        return Wire.Rbp; return Wire.Prbp; return Wire.Black;
        map (fun p -> Wire.Multi_rbp p) (int_range 1 8);
        map (fun p -> Wire.Multi_prbp p) (int_range 1 8);
      ])

let gen_variants =
  QCheck.Gen.(
    map
      (fun (sliding, recompute, no_delete) ->
        { Wire.sliding; recompute; no_delete })
      (triple bool bool bool))

let gen_budget =
  QCheck.Gen.(
    map
      (fun (s, m, w) ->
        {
          Wire.max_states = Option.map abs s;
          max_millis = Option.map abs m;
          max_words = Option.map abs w;
        })
      (triple (opt int) (opt int) (opt int)))

let gen_request =
  let gen =
    QCheck.Gen.(
      let* params = triple (int_range 1 100_000) (int_range 2 4) (int_range 1 4)
      and* kind = oneofl [ Wire.Solve; Wire.Bracket; Wire.Frontier ]
      and* game = gen_game
      and* r = int_range 0 10
      and* variants = gen_variants
      and* budget = gen_budget
      and* want_strategy = bool
      and* stream = bool
      and* rules = opt (small_list (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)))
      and* rs = opt (small_list (int_range 1 16)) in
      return
        (Wire.request ~variants ~budget ~want_strategy ~stream ?rules ?rs
           ~kind ~game ~r (dag_of params)))
  in
  QCheck.make ~print:Wire.encode_request gen

let gen_rbp_moves =
  QCheck.Gen.(
    small_list
      (oneof
         [
           map (fun v -> Prbp.Move.R.Load (abs v)) small_nat;
           map (fun v -> Prbp.Move.R.Save (abs v)) small_nat;
           map (fun v -> Prbp.Move.R.Compute (abs v)) small_nat;
           map (fun v -> Prbp.Move.R.Delete (abs v)) small_nat;
           map
             (fun (u, v) -> Prbp.Move.R.Slide (abs u, abs v))
             (pair small_nat small_nat);
         ]))

let gen_prbp_moves =
  QCheck.Gen.(
    small_list
      (oneof
         [
           map (fun v -> Prbp.Move.P.Load (abs v)) small_nat;
           map (fun v -> Prbp.Move.P.Save (abs v)) small_nat;
           map
             (fun (u, v) -> Prbp.Move.P.Compute (abs u, abs v))
             (pair small_nat small_nat);
           map (fun v -> Prbp.Move.P.Delete (abs v)) small_nat;
           map (fun v -> Prbp.Move.P.Clear (abs v)) small_nat;
         ]))

let gen_multi_rbp_moves =
  QCheck.Gen.(
    let q = int_range 0 7 in
    small_list
      (oneof
         [
           map
             (fun (q, v) : Prbp.Multi.Move.rbp -> Load (q, abs v))
             (pair q small_nat);
           map
             (fun (q, v) : Prbp.Multi.Move.rbp -> Save (q, abs v))
             (pair q small_nat);
           map
             (fun (q, v) : Prbp.Multi.Move.rbp -> Compute (q, abs v))
             (pair q small_nat);
           map
             (fun (q, v) : Prbp.Multi.Move.rbp -> Delete (q, abs v))
             (pair q small_nat);
         ]))

let gen_multi_prbp_moves =
  QCheck.Gen.(
    let q = int_range 0 7 in
    small_list
      (oneof
         [
           map
             (fun (q, v) : Prbp.Multi.Move.prbp -> Load (q, abs v))
             (pair q small_nat);
           map
             (fun (q, v) : Prbp.Multi.Move.prbp -> Save (q, abs v))
             (pair q small_nat);
           map
             (fun (q, (u, v)) : Prbp.Multi.Move.prbp ->
               Compute (q, (abs u, abs v)))
             (pair q (pair small_nat small_nat));
           map
             (fun (q, v) : Prbp.Multi.Move.prbp -> Delete (q, abs v))
             (pair q small_nat);
         ]))

let gen_strategy =
  QCheck.Gen.(
    oneof
      [
        map (fun ms -> Wire.Rbp_strategy ms) gen_rbp_moves;
        map (fun ms -> Wire.Prbp_strategy ms) gen_prbp_moves;
        map
          (fun (p, ms) -> Wire.Multi_rbp_strategy (p, ms))
          (pair (int_range 1 8) gen_multi_rbp_moves);
        map
          (fun (p, ms) -> Wire.Multi_prbp_strategy (p, ms))
          (pair (int_range 1 8) gen_multi_prbp_moves);
      ])

let gen_stats =
  QCheck.Gen.(
    let* explored = small_nat
    and* pruned = small_nat
    and* expansions = small_nat
    and* frontier = small_nat
    and* elapsed_s = float_bound_inclusive 100.0
    and* mem_words = small_nat
    and* prune_disabled = bool
    and* spilled = small_nat in
    return
      {
        Prbp.Solver.explored;
        pruned;
        expansions;
        frontier;
        elapsed_s;
        mem_words;
        prune_disabled;
        spilled;
      })

let gen_curve =
  QCheck.Gen.(
    small_list
      (let* t_s = float_bound_inclusive 10.0
       and* lower = small_nat
       and* width = opt small_nat in
       return
         {
           Prbp.Solver.Convergence.t_s;
           lower;
           upper = Option.map (fun w -> lower + w) width;
         }))

let gen_outcome =
  let gen =
    QCheck.Gen.(
      let* game = gen_game
      and* r = int_range 0 10
      and* variants = gen_variants
      and* n = small_nat
      and* m = small_nat
      and* status = oneofl [ `Optimal; `Bounded; `Unsolvable ]
      and* lower = small_nat
      and* upper = opt small_nat
      and* stopped = opt (oneofl [ "max-states"; "deadline"; "max-words" ])
      and* strategy = opt gen_strategy
      and* curve = gen_curve
      and* stats = gen_stats in
      return
        {
          Wire.v = Wire.version;
          game;
          r;
          variants;
          dag_hash = "0123456789abcdef0123456789abcdef";
          n;
          m;
          status;
          lower;
          upper;
          stopped;
          strategy;
          curve;
          stats;
        })
  in
  QCheck.make ~print:Wire.encode_outcome gen

let gen_bracket =
  let gen =
    QCheck.Gen.(
      let* family = opt (string_size ~gen:(char_range 'a' 'z') (int_range 1 8))
      and* game = oneofl [ Wire.Rbp; Wire.Prbp ]
      and* r = int_range 1 10
      and* n = small_nat
      and* m = small_nat
      and* lower = small_nat
      and* lower_rule = oneofl [ "trivial"; "source-cut"; "exact-dominator" ]
      and* width = small_nat
      and* upper_rule = oneofl [ "belady"; "belady+opt"; "greedy-edges" ]
      and* verifier = oneofl [ "literal"; "engine" ]
      and* tight = bool
      and* rules =
        small_list (pair (oneofl [ "trivial"; "sink-cut" ]) small_nat)
      and* profile_classes = opt small_nat
      and* strategy = opt gen_strategy
      and* curve = gen_curve
      and* elapsed_s = float_bound_inclusive 10.0 in
      return
        {
          Wire.v = Wire.version;
          family;
          game;
          r;
          n;
          m;
          lower;
          lower_rule;
          upper = lower + width;
          upper_rule;
          verifier;
          tight;
          width;
          rules;
          profile_classes;
          strategy;
          curve;
          elapsed_s;
        })
  in
  QCheck.make ~print:Wire.encode_bracket gen

let gen_frontier =
  let gen =
    QCheck.Gen.(
      let gen_point p =
        let* r = int_range 1 16
        and* comm_lower = small_nat
        and* comm_width = opt small_nat
        and* time_lower = small_nat
        and* time_upper = opt small_nat
        and* status = oneofl [ `Exact; `Bracketed ]
        and* source = oneofl [ "exact"; "exact-truncated"; "pooled:trivial" ]
        and* verified = bool
        and* settled = bool
        and* dominated = bool
        and* strategy =
          opt
            (oneof
               [
                 map
                   (fun ms -> Wire.Multi_rbp_strategy (p, ms))
                   gen_multi_rbp_moves;
                 map
                   (fun ms -> Wire.Multi_prbp_strategy (p, ms))
                   gen_multi_prbp_moves;
               ])
        and* curve = gen_curve in
        return
          {
            Wire.p;
            r;
            comm_lower;
            comm_upper = Option.map (fun w -> comm_lower + w) comm_width;
            time_lower;
            time_upper;
            status;
            source;
            verified;
            settled;
            dominated;
            strategy;
            curve;
          }
      in
      let* p = int_range 1 8 in
      let* family = opt (string_size ~gen:(char_range 'a' 'z') (int_range 1 8))
      and* game =
        oneofl [ Wire.Multi_rbp p; Wire.Multi_prbp p ]
      and* n = small_nat
      and* m = small_nat
      and* model = oneofl [ "unit"; "io2" ]
      and* points = small_list (gen_point p)
      and* infeasible_rs = small_list (int_range 1 8)
      and* exhausted = bool
      and* elapsed_s = float_bound_inclusive 10.0 in
      return
        {
          Wire.v = Wire.version;
          family;
          game;
          dag_hash = "0123456789abcdef0123456789abcdef";
          n;
          m;
          model;
          points;
          infeasible_rs;
          exhausted;
          elapsed_s;
        })
  in
  QCheck.make ~print:Wire.encode_frontier gen

let gen_progress =
  QCheck.Gen.(
    let* expansions = small_nat
    and* explored = small_nat
    and* pruned = small_nat
    and* frontier = small_nat
    and* depth = small_nat
    and* table_load = float_bound_inclusive 1.0
    and* elapsed_s = float_bound_inclusive 100.0
    and* lower = small_nat
    and* upper = opt small_nat in
    return
      {
        Prbp.Solver.Telemetry.expansions;
        explored;
        pruned;
        frontier;
        depth;
        table_load;
        elapsed_s;
        lower;
        upper;
      })

let gen_event =
  let gen =
    QCheck.Gen.(
      oneof
        [
          map
            (fun (width, max_states) ->
              Prbp.Solver.Telemetry.Start { width; max_states })
            (pair small_nat small_nat);
          map (fun p -> Prbp.Solver.Telemetry.Progress p) gen_progress;
          map
            (fun pruned -> Prbp.Solver.Telemetry.Prune { pruned })
            small_nat;
          map
            (fun (outcome, progress) ->
              Prbp.Solver.Telemetry.Stop { outcome; progress })
            (pair (oneofl [ "optimal"; "deadline"; "unsolvable" ]) gen_progress);
        ])
  in
  QCheck.make ~print:Wire.encode_event gen

(* ------------------------------------------------------------------ *)
(* Round trips: decoding an encoder's output must reproduce the value
   (checked as byte-identical re-encoding — the encoders are
   deterministic, so this is equality on the wire image). *)

let roundtrip_request =
  qcase ~count:200 "request: decode ∘ encode = id" gen_request (fun rq ->
      let s = Wire.encode_request rq in
      match Wire.decode_request s with
      | Error e -> QCheck.Test.fail_reportf "decode_request: %s" e
      | Ok rq' -> Wire.encode_request rq' = s)

let roundtrip_outcome =
  qcase ~count:300 "outcome: decode ∘ encode = id" gen_outcome (fun o ->
      let s = Wire.encode_outcome o in
      match Wire.decode_outcome s with
      | Error e -> QCheck.Test.fail_reportf "decode_outcome: %s" e
      | Ok o' -> Wire.encode_outcome o' = s && o' = o)

let roundtrip_bracket =
  qcase ~count:300 "bracket: decode ∘ encode = id" gen_bracket (fun b ->
      let s = Wire.encode_bracket b in
      match Wire.decode_bracket s with
      | Error e -> QCheck.Test.fail_reportf "decode_bracket: %s" e
      | Ok b' -> Wire.encode_bracket b' = s && b' = b)

let roundtrip_frontier =
  qcase ~count:300 "frontier: decode ∘ encode = id" gen_frontier (fun f ->
      let s = Wire.encode_frontier f in
      match Wire.decode_frontier s with
      | Error e -> QCheck.Test.fail_reportf "decode_frontier: %s" e
      | Ok f' -> Wire.encode_frontier f' = s && f' = f)

let roundtrip_event =
  qcase ~count:300 "telemetry: decode ∘ encode = id" gen_event (fun ev ->
      let s = Wire.encode_event ev in
      match Wire.decode_event s with
      | Error e -> QCheck.Test.fail_reportf "decode_event: %s" e
      | Ok ev' -> Wire.encode_event ev' = s && ev' = ev)

let gen_req_summary =
  QCheck.Gen.(
    let* trace_id = small_nat
    and* route = oneofl [ "/v1/solve"; "/v1/bracket"; "/metrics"; "other" ]
    and* status = oneofl [ 200; 400; 404; 503 ]
    and* cache = oneofl [ "hit"; "miss"; "-" ]
    and* dur_s = float_bound_inclusive 10.0
    and* outcome = oneofl [ "optimal"; "bounded"; "-" ] in
    return { Wire.trace_id; route; status; cache; dur_s; outcome })

let gen_status =
  let gen =
    QCheck.Gen.(
      let* uptime_s = float_bound_inclusive 1000.0
      and* workers = int_range 1 8
      and* in_flight = small_nat
      and* queued = small_nat
      and* requests_total = small_nat
      and* cache_hits = small_nat
      and* cache_misses = small_nat
      and* flight_seen = small_nat
      and* flight_capacity = int_range 1 128
      and* routes =
        small_list
          (let* route = oneofl [ "/v1/solve"; "other" ]
           and* count = small_nat
           and* sum_s = float_bound_inclusive 100.0
           and* buckets =
             small_list (pair (float_bound_inclusive 8.0) small_nat)
           in
           return { Wire.route; count; sum_s; buckets })
      and* recent = small_list gen_req_summary
      and* slowest = small_list gen_req_summary in
      return
        (Wire.status_report ~uptime_s ~workers ~in_flight ~queued
           ~requests_total ~cache_hits ~cache_misses ~flight_seen
           ~flight_capacity ~routes ~recent ~slowest ()))
  in
  QCheck.make ~print:Wire.encode_status gen

let roundtrip_status =
  qcase ~count:200 "status: decode ∘ encode = id" gen_status (fun st ->
      let s = Wire.encode_status st in
      match Wire.decode_status s with
      | Error e -> QCheck.Test.fail_reportf "decode_status: %s" e
      | Ok st' -> Wire.encode_status st' = s && st' = st)

let test_healthz_roundtrip () =
  let h = Wire.healthz ~uptime_s:12.5 in
  let s = Wire.encode_healthz h in
  (match Wire.decode_healthz s with
  | Error e -> Alcotest.failf "decode_healthz: %s" e
  | Ok h' ->
      check_true "roundtrip" (h' = h);
      check_int "wire version" Wire.version h'.Wire.wire;
      Alcotest.(check string) "bench schema" Wire.bench_schema h'.Wire.bench);
  check_err "status body is not a healthz"
    (Wire.decode_healthz "{\"v\":1,\"kind\":\"status\"}")

(* Old records (pre-v10) carry no curve and no progress bounds; they
   must still decode, as the weakest certified statement. *)
let test_tolerant_pre_curve_decode () =
  (match
     Wire.decode_event
       "{\"v\":1,\"ev\":\"progress\",\"expansions\":1,\"explored\":2,\
        \"pruned\":3,\"frontier\":4,\"depth\":5,\"table_load\":0.5,\
        \"elapsed_s\":0.25}"
   with
  | Ok (Prbp.Solver.Telemetry.Progress p) ->
      check_int "absent lower decodes as 0" 0 p.Prbp.Solver.Telemetry.lower;
      check_true "absent upper decodes as None"
        (p.Prbp.Solver.Telemetry.upper = None)
  | Ok _ -> Alcotest.fail "expected a progress event"
  | Error e -> Alcotest.failf "pre-curve progress rejected: %s" e);
  let no_curve =
    "{\"v\":1,\"kind\":\"outcome\",\"game\":\"rbp\",\"r\":2,\
     \"variants\":{},\"dag_hash\":\"0123456789abcdef0123456789abcdef\",\
     \"n\":1,\"m\":0,\"status\":\"optimal\",\"lower\":1,\"upper\":1,\
     \"stats\":{\"explored\":1,\"pruned\":0,\"expansions\":1,\
     \"frontier\":0,\"elapsed_s\":0.1,\"mem_words\":0,\
     \"prune_disabled\":false,\"spilled\":0}}"
  in
  match Wire.decode_outcome no_curve with
  | Ok o -> check_true "absent curve decodes as []" (o.Wire.curve = [])
  | Error e -> Alcotest.failf "pre-curve outcome rejected: %s" e

(* ------------------------------------------------------------------ *)
(* Decoder hardening *)

let test_rejects () =
  check_err "garbage" (Wire.decode_request "garbage");
  check_err "empty object" (Wire.decode_request "{}");
  check_err "wrong version"
    (Wire.decode_request
       "{\"v\":2,\"kind\":\"solve\",\"game\":\"rbp\",\"r\":2,\"dag\":{\"nodes\":1,\"edges\":[]}}");
  check_err "unknown game"
    (Wire.decode_request
       "{\"v\":1,\"kind\":\"solve\",\"game\":\"chess\",\"r\":2,\"dag\":{\"nodes\":1,\"edges\":[]}}");
  check_err "negative r"
    (Wire.decode_request
       "{\"v\":1,\"kind\":\"solve\",\"game\":\"rbp\",\"r\":-1,\"dag\":{\"nodes\":1,\"edges\":[]}}");
  check_err "cyclic dag"
    (Wire.decode_request
       "{\"v\":1,\"kind\":\"solve\",\"game\":\"rbp\",\"r\":2,\"dag\":{\"nodes\":2,\"edges\":[[0,1],[1,0]]}}");
  check_err "out-of-range edge"
    (Wire.decode_request
       "{\"v\":1,\"kind\":\"solve\",\"game\":\"rbp\",\"r\":2,\"dag\":{\"nodes\":2,\"edges\":[[0,5]]}}");
  check_err "unknown event" (Wire.decode_event "{\"v\":1,\"ev\":\"nope\"}");
  check_err "bracket with wrong kind"
    (Wire.decode_bracket "{\"v\":1,\"kind\":\"solve\"}");
  check_err "frontier with wrong kind"
    (Wire.decode_frontier "{\"v\":1,\"kind\":\"bracket\"}");
  check_err "rs below 1"
    (Wire.decode_request
       "{\"v\":1,\"kind\":\"frontier\",\"game\":\"multi-rbp:2\",\"r\":2,\"rs\":[0,2],\"dag\":{\"nodes\":1,\"edges\":[]}}")

let test_error_code () =
  (* legacy error bodies are byte-identical when no code is attached *)
  let plain = Wire.encode_error "boom" in
  Alcotest.(check string) "legacy bytes" "{\"v\":1,\"error\":\"boom\"}" plain;
  check_true "error text" (Wire.decode_error plain = Some "boom");
  check_true "no code" (Wire.decode_error_code plain = None);
  let coded = Wire.encode_error ~code:"invalid-argument" "p too large" in
  check_true "coded text" (Wire.decode_error coded = Some "p too large");
  check_true "code"
    (Wire.decode_error_code coded = Some "invalid-argument")

let test_defaults () =
  (* clients may omit variants/budget/flags *)
  match
    Wire.decode_request
      "{\"v\":1,\"kind\":\"solve\",\"game\":\"prbp\",\"r\":3,\"dag\":{\"nodes\":2,\"edges\":[[0,1]]}}"
  with
  | Error e -> Alcotest.failf "minimal request: %s" e
  | Ok rq ->
      check_true "no variants" (rq.Wire.variants = Wire.no_variants);
      check_true "no budget" (rq.Wire.budget = Wire.no_budget);
      check_false "no strategy" rq.Wire.want_strategy;
      check_false "no stream" rq.Wire.stream

let test_json_parser () =
  check_err "trailing garbage" (Json.of_string "{} {}");
  check_err "deep nesting"
    (Json.of_string (String.concat "" (List.init 200 (fun _ -> "["))));
  check_err "lone surrogate" (Json.of_string "\"\\ud800\"");
  check_err "raw control" (Json.of_string "\"a\nb\"");
  (match Json.of_string "\"\\ud83d\\ude00\"" with
  | Ok (Json.String s) -> check_int "surrogate pair decodes" 4 (String.length s)
  | _ -> Alcotest.fail "surrogate pair rejected");
  (match Json.of_string "123456789012345" with
  | Ok (Json.Int i) -> check_int "big int exact" 123456789012345 i
  | _ -> Alcotest.fail "int parsed as float");
  match Json.of_string "1.5e2" with
  | Ok (Json.Float f) -> check_true "float" (f = 150.0)
  | _ -> Alcotest.fail "float literal"

let test_game_labels () =
  List.iter
    (fun g ->
      match Wire.game_of_label (Wire.game_label g) with
      | Ok g' -> check_true "label roundtrip" (g = g')
      | Error e -> Alcotest.failf "game label: %s" e)
    [ Wire.Rbp; Wire.Prbp; Wire.Black; Wire.Multi_rbp 4; Wire.Multi_prbp 7 ];
  check_err "bad multi" (Wire.game_of_label "multi-rbp:zero");
  check_err "empty" (Wire.game_of_label "")

let test_budget_class () =
  let b s m w = { Wire.max_states = s; max_millis = m; max_words = w } in
  check_true "unset caps"
    (Wire.budget_class (b None None None) = "s_:m_:w_");
  (* near-identical budgets share a class; different magnitudes do not *)
  check_true "same bucket"
    (Wire.budget_class (b (Some 1000) None None)
    = Wire.budget_class (b (Some 1024) None None));
  check_true "different bucket"
    (Wire.budget_class (b (Some 1000) None None)
    <> Wire.budget_class (b (Some 100_000) None None))

(* ------------------------------------------------------------------ *)
(* Canonical form + content hash (the prbpd cache key) *)

let permuted g seed =
  (* relabel g by a seeded pseudo-random permutation *)
  let n = Dag.n_nodes g in
  let perm = Array.init n (fun i -> i) in
  let state = ref (seed land 0x3FFFFFFF) in
  let rand bound =
    state := (!state * 1103515245) + 12345;
    (!state lsr 7) mod bound
  in
  for i = n - 1 downto 1 do
    let j = rand (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  Dag.make ~n (List.map (fun (u, v) -> (perm.(u), perm.(v))) (Dag.edges g))

let hash_iso_invariant =
  qcase ~count:100 "Dag.hash: isomorphic relabelings hash identically"
    (QCheck.pair gen_dag_params QCheck.small_nat)
    (fun (params, seed) ->
      let g = dag_of params in
      Dag.hash g = Dag.hash (permuted g seed)
      && Prbp.Serialize.canonical g = Prbp.Serialize.canonical (permuted g seed))

let hash_structure_sensitive =
  qcase ~count:100 "Dag.hash: dropping an edge changes the hash"
    gen_dag_params
    (fun params ->
      let g = dag_of params in
      let edges = Dag.edges g in
      match edges with
      | [] -> QCheck.assume_fail ()
      | _ :: rest ->
          (* removing one edge may strand a node, but node count stays
             in the encoding, so only the structure differs *)
          let g' = Dag.make ~n:(Dag.n_nodes g) rest in
          Dag.hash g <> Dag.hash g')

let test_hash_stable () =
  (* byte-stability across runs and processes: a pinned digest (the
     cache key must outlive the process that wrote the entry) *)
  let g = Prbp.Graphs.Basic.diamond () in
  Alcotest.(check string)
    "diamond digest" "669b7da3d2ca5f29dced286fd4dc6839" (Dag.hash g);
  Alcotest.(check string) "repeatable" (Dag.hash g) (Dag.hash g);
  check_int "digest width" 32 (String.length (Dag.hash g))

let test_hash_ignores_names () =
  let edges = [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let bare = Dag.make ~n:4 edges in
  let named =
    Dag.make ~names:[| "a"; "b"; "c"; "d" |] ~family:"diamond" ~n:4 edges
  in
  Alcotest.(check string)
    "names/family never hash" (Dag.hash bare) (Dag.hash named)

let suite =
  [
    ( "wire",
      [
        roundtrip_request;
        roundtrip_outcome;
        roundtrip_bracket;
        roundtrip_frontier;
        roundtrip_event;
        roundtrip_status;
        case "healthz: versioned round trip" test_healthz_roundtrip;
        case "pre-curve records decode tolerantly"
          test_tolerant_pre_curve_decode;
        case "decoders reject malformed input" test_rejects;
        case "error bodies carry an optional code" test_error_code;
        case "minimal request decodes with defaults" test_defaults;
        case "json parser hardening" test_json_parser;
        case "game labels" test_game_labels;
        case "budget classes" test_budget_class;
        hash_iso_invariant;
        hash_structure_sensitive;
        case "hash is byte-stable" test_hash_stable;
        case "hash ignores names" test_hash_ignores_names;
      ] );
  ]

(* Shared helpers for the test suite. *)

let case name f = Alcotest.test_case name `Quick f

let slow_case name f = Alcotest.test_case name `Slow f

let qcase ?count name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ?count ~name gen prop)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_true name b = Alcotest.(check bool) name true b

let check_false name b = Alcotest.(check bool) name false b

let check_ok name = function
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: unexpected error: %s" name e

let check_err name = function
  | Ok _ -> Alcotest.failf "%s: expected an error" name
  | Error _ -> ()

(* Replay an RBP strategy, requiring completeness, and return its cost. *)
let rbp_cost ?(cfg_of = fun r -> Prbp.Rbp.config ~r ()) ~r g moves =
  match Prbp.Rbp.check (cfg_of r) g moves with
  | Ok c -> c
  | Error e -> Alcotest.failf "invalid RBP pebbling: %s" e

let prbp_cost ?(cfg_of = fun r -> Prbp.Prbp_game.config ~r ()) ~r g moves =
  match Prbp.Prbp_game.check (cfg_of r) g moves with
  | Ok c -> c
  | Error e -> Alcotest.failf "invalid PRBP pebbling: %s" e

(* --- solver-outcome plumbing ---------------------------------------
   The tests speak in plain costs and options; the solvers in
   {!Prbp.Solver.outcome}.  Unless a test opts into truncation (see
   [tolerant]), running out of budget is a test failure. *)

module S = Prbp.Solver

let settled what = function
  | S.Optimal o -> Some o
  | S.Unsolvable _ -> None
  | S.Bounded b ->
      Alcotest.failf "%s: budget exhausted at [%d, %s]" what b.S.lower
        (match b.S.upper with Some u -> string_of_int u | None -> "?")

let cost_of what outcome = Option.map (fun o -> o.S.cost) (settled what outcome)

let cost_exn what outcome =
  match cost_of what outcome with
  | Some c -> c
  | None -> Alcotest.failf "%s: no valid pebbling exists" what

(* For property tests that skip instances whose state space exceeds
   the budget: [None] = truncated (skip), [Some cost_opt] = settled. *)
let tolerant = function
  | S.Optimal o -> Some (Some o.S.cost)
  | S.Unsolvable _ -> Some None
  | S.Bounded _ -> None

let strategy_of what = function
  | S.Optimal o -> (
      match o.S.strategy with
      | Some moves -> Some (o.S.cost, moves)
      | None -> Alcotest.failf "%s: strategy missing from Optimal" what)
  | S.Unsolvable _ -> None
  | S.Bounded _ -> Alcotest.failf "%s: budget exhausted" what

let opt_rbp_opt ?budget ?prune ?eager_deletes cfg g =
  cost_of "Exact_rbp"
    (Prbp.Exact_rbp.solve ?budget ?prune ?eager_deletes cfg g)

let opt_rbp ?budget ?prune ?eager_deletes cfg g =
  cost_exn "Exact_rbp"
    (Prbp.Exact_rbp.solve ?budget ?prune ?eager_deletes cfg g)

let opt_prbp_opt ?budget ?prune ?eager_deletes cfg g =
  cost_of "Exact_prbp"
    (Prbp.Exact_prbp.solve ?budget ?prune ?eager_deletes cfg g)

let opt_prbp ?budget ?prune ?eager_deletes cfg g =
  cost_exn "Exact_prbp"
    (Prbp.Exact_prbp.solve ?budget ?prune ?eager_deletes cfg g)

let mrbp_opt_opt ?budget ?prune cfg g =
  cost_of "Exact_multi.rbp" (Prbp.Exact_multi.rbp_solve ?budget ?prune cfg g)

let mrbp_opt ?budget ?prune cfg g =
  cost_exn "Exact_multi.rbp" (Prbp.Exact_multi.rbp_solve ?budget ?prune cfg g)

let mprbp_opt_opt ?budget ?prune cfg g =
  cost_of "Exact_multi.prbp"
    (Prbp.Exact_multi.prbp_solve ?budget ?prune cfg g)

let mprbp_opt ?budget ?prune cfg g =
  cost_exn "Exact_multi.prbp"
    (Prbp.Exact_multi.prbp_solve ?budget ?prune cfg g)

let rbp_strategy ?budget cfg g =
  strategy_of "Exact_rbp"
    (Prbp.Exact_rbp.solve ?budget ~want_strategy:true cfg g)

let prbp_strategy ?budget cfg g =
  strategy_of "Exact_prbp"
    (Prbp.Exact_prbp.solve ?budget ~want_strategy:true cfg g)

let mrbp_strategy ?budget cfg g =
  strategy_of "Exact_multi.rbp"
    (Prbp.Exact_multi.rbp_solve ?budget ~want_strategy:true cfg g)

let mprbp_strategy ?budget cfg g =
  strategy_of "Exact_multi.prbp"
    (Prbp.Exact_multi.prbp_solve ?budget ~want_strategy:true cfg g)

(* A deterministic pool of small random DAGs for cross-module tests. *)
let random_dags =
  lazy
    (List.concat_map
       (fun seed ->
         [
           Prbp.Graphs.Random_dag.make ~seed ~layers:3 ~width:3 ();
           Prbp.Graphs.Random_dag.make ~seed ~layers:4 ~width:2
             ~density:0.5 ();
         ])
       [ 1; 2; 3; 4; 5 ])

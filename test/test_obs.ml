(* The observability stack: the monotonic clock, span tracer and
   metrics registry of [Prbp.Obs], their exporters, and the places the
   library publishes into them (engine counters, bracket stage spans,
   telemetry JSON lines). *)
open Test_util
module Clock = Prbp.Obs.Clock
module Span = Prbp.Obs.Span
module Flight = Prbp.Obs.Flight
module Metrics = Prbp.Obs.Metrics
module Json = Prbp.Obs.Json

(* ------------------------------------------------------------------ *)
(* A minimal JSON validator (the tree has no JSON library): accepts
   exactly the RFC 8259 grammar over bytes >= 0x20, which is enough to
   reject every broken escape the exporters could produce. *)

exception Bad

let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise Bad in
  let adv () = incr pos in
  let rec ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
          adv ();
          ws ()
      | _ -> ()
  in
  let expect c = if peek () <> c then raise Bad else adv () in
  let lit l = String.iter expect l in
  let hex () =
    (match peek () with
    | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
    | _ -> raise Bad);
    adv ()
  in
  let str () =
    expect '"';
    let rec go () =
      let c = peek () in
      adv ();
      match c with
      | '"' -> ()
      | '\\' ->
          (match peek () with
          | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> adv ()
          | 'u' ->
              adv ();
              for _ = 1 to 4 do
                hex ()
              done
          | _ -> raise Bad);
          go ()
      | c when Char.code c < 0x20 -> raise Bad
      | _ -> go ()
    in
    go ()
  in
  let digits () =
    let saw = ref false in
    while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
      saw := true;
      adv ()
    done;
    if not !saw then raise Bad
  in
  let number () =
    if peek () = '-' then adv ();
    digits ();
    if !pos < n && s.[!pos] = '.' then begin
      adv ();
      digits ()
    end;
    if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
      adv ();
      if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then adv ();
      digits ()
    end
  in
  let rec value () =
    ws ();
    match peek () with
    | '{' ->
        adv ();
        ws ();
        if peek () = '}' then adv ()
        else
          let rec members () =
            ws ();
            str ();
            ws ();
            expect ':';
            value ();
            ws ();
            match peek () with
            | ',' ->
                adv ();
                members ()
            | '}' -> adv ()
            | _ -> raise Bad
          in
          members ()
    | '[' ->
        adv ();
        ws ();
        if peek () = ']' then adv ()
        else
          let rec elems () =
            value ();
            ws ();
            match peek () with
            | ',' ->
                adv ();
                elems ()
            | ']' -> adv ()
            | _ -> raise Bad
          in
          elems ()
    | '"' -> str ()
    | 't' -> lit "true"
    | 'f' -> lit "false"
    | 'n' -> lit "null"
    | '-' | '0' .. '9' -> number ()
    | _ -> raise Bad
  in
  match
    value ();
    ws ()
  with
  | () -> !pos = n
  | exception Bad -> false

let check_json name s =
  if not (json_valid s) then Alcotest.failf "%s: invalid JSON: %s" name s

(* ------------------------------------------------------------------ *)
(* Harness: every test that flips a global recorder restores it. *)

(* A deterministic clock source: each read advances 1 ms. *)
let fake_source () =
  let t = ref 0. in
  fun () ->
    t := !t +. 0.001;
    !t

let with_tracing ?(fake_clock = false) f =
  if fake_clock then Clock.set_source (Some (fake_source ()));
  Span.reset ();
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.reset ();
      Clock.set_source None)
    f

let with_metrics f =
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) f

(* ------------------------------------------------------------------ *)
(* Clock. *)

let clock_monotonic () =
  let seq = ref [ 1.0; 2.0; 1.5; 3.0 ] in
  Clock.set_source
    (Some
       (fun () ->
         match !seq with
         | [] -> 10.
         | x :: tl ->
             seq := tl;
             x));
  Fun.protect ~finally:(fun () -> Clock.set_source None) @@ fun () ->
  check_true "first read" (Clock.now () = 1.0);
  check_true "advances" (Clock.now () = 2.0);
  check_true "backwards step latches" (Clock.now () = 2.0);
  check_true "resumes once real time catches up" (Clock.now () = 3.0)

let clock_deadlines () =
  check_true "no deadline never expires"
    (not (Clock.expired (Clock.deadline_of_millis None)));
  check_true "None maps to infinity"
    (Clock.deadline_of_millis None = infinity);
  check_true "past deadline expired" (Clock.expired 0.);
  check_true "elapsed_s non-negative" (Clock.elapsed_s (Clock.now ()) >= 0.)

(* ------------------------------------------------------------------ *)
(* Spans. *)

(* Seeded random span forest: deterministic for a seed, arbitrary
   enough for the nesting properties. *)
let lcg st =
  st := (!st * 48271) mod 0x7fffffff;
  !st

let build_forest seed =
  let st = ref (max 1 seed) in
  let rec node depth =
    Span.with_
      ~name:(Printf.sprintf "n%d" (lcg st mod 7))
      ~attrs:[ ("d", string_of_int depth) ]
      (fun () ->
        Span.add_attr "x" (string_of_int (lcg st mod 100));
        if depth < 3 then
          for _ = 1 to lcg st mod 3 do
            node (depth + 1)
          done)
  in
  for _ = 1 to 3 do
    node 0
  done

let span_well_formed =
  qcase ~count:50 "spans: nesting, durations, ids well-formed"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 100_000))
    (fun seed ->
      with_tracing ~fake_clock:true @@ fun () ->
      build_forest seed;
      let ss = Span.spans () in
      let by_id = Hashtbl.create 64 in
      List.iter (fun s -> Hashtbl.replace by_id s.Span.id s) ss;
      let ids_sorted =
        let rec go = function
          | a :: (b :: _ as tl) -> a.Span.id < b.Span.id && go tl
          | _ -> true
        in
        go ss
      in
      ids_sorted
      && List.for_all
           (fun s ->
             s.Span.t1 >= s.Span.t0
             &&
             if s.Span.parent < 0 then true
             else
               match Hashtbl.find_opt by_id s.Span.parent with
               | None -> false
               | Some p ->
                   (* child interval inside the parent's, and started
                      after it (ids are start-ordered) *)
                   p.Span.t0 <= s.Span.t0 && s.Span.t1 <= p.Span.t1
                   && p.Span.id < s.Span.id)
           ss)

let span_exporters_byte_stable () =
  let run () =
    with_tracing ~fake_clock:true @@ fun () ->
    build_forest 42;
    (Span.to_chrome (), Span.to_text ())
  in
  let c1, t1 = run () in
  let c2, t2 = run () in
  Alcotest.(check string) "chrome export byte-stable" c1 c2;
  Alcotest.(check string) "text export byte-stable" t1 t2;
  check_json "chrome trace" c1;
  check_true "text has two-space child indent"
    (String.length t1 > 0
    && List.exists
         (fun line -> String.length line > 2 && String.sub line 0 2 = "  ")
         (String.split_on_char '\n' t1))

let span_chrome_valid_any_strings =
  qcase ~count:100 "spans: Chrome export is valid JSON for any strings"
    QCheck.(pair printable_string printable_string)
    (fun (name, v) ->
      with_tracing @@ fun () ->
      Span.with_ ~name
        ~attrs:[ ("k\"ey\\", v) ]
        (fun () -> Span.add_attr v name);
      json_valid (Span.to_chrome ()))

let span_disabled_is_transparent () =
  Span.reset ();
  check_false "disabled by default" (Span.enabled ());
  let r = Span.with_ ~name:"ghost" (fun () -> 41 + 1) in
  check_int "result passes through" 42 r;
  Span.add_attr "k" "v";
  check_int "nothing recorded" 0 (List.length (Span.spans ()))

let span_records_on_raise () =
  with_tracing @@ fun () ->
  (try Span.with_ ~name:"boom" (fun () -> failwith "x")
   with Failure _ -> ());
  match Span.spans () with
  | [ s ] -> check_true "span named boom recorded" (s.Span.name = "boom")
  | ss -> Alcotest.failf "expected 1 span, got %d" (List.length ss)

(* ------------------------------------------------------------------ *)
(* Trace contexts: concurrent requests must come out disjoint. *)

let span_context_isolation () =
  with_tracing @@ fun () ->
  let c1 = Span.new_context () and c2 = Span.new_context () in
  check_true "distinct trace ids" (Span.trace_id c1 <> Span.trace_id c2);
  check_true "fresh trace ids are positive"
    (Span.trace_id c1 > 0 && Span.trace_id c2 > 0);
  let work ctx tag =
    Span.with_current ctx (fun () ->
        Span.with_ ~name:(tag ^ ".outer") (fun () ->
            for _ = 1 to 3 do
              Span.with_ ~name:(tag ^ ".inner") (fun () -> ())
            done))
  in
  (* two overlapping "requests", as the daemon's worker domains run
     them *)
  let d1 = Domain.spawn (fun () -> work c1 "a")
  and d2 = Domain.spawn (fun () -> work c2 "b") in
  Domain.join d1;
  Domain.join d2;
  let s1 = Span.context_spans c1 and s2 = Span.context_spans c2 in
  check_int "ctx1 recorded its request" 4 (List.length s1);
  check_int "ctx2 recorded its request" 4 (List.length s2);
  check_int "default context untouched" 0 (List.length (Span.spans ()));
  let ids ss = List.map (fun s -> s.Span.id) ss in
  check_true "span ids restart per context (equal requests, equal ids)"
    (ids s1 = ids s2 && List.mem 0 (ids s1));
  let parents_within ss =
    List.for_all
      (fun s ->
        s.Span.parent = -1
        || List.exists (fun p -> p.Span.id = s.Span.parent) ss)
      ss
  in
  check_true "no cross-request parent links (ctx1)" (parents_within s1);
  check_true "no cross-request parent links (ctx2)" (parents_within s2);
  check_true "ctx1 saw only its own names"
    (List.for_all (fun s -> String.length s.Span.name > 0 && s.Span.name.[0] = 'a') s1);
  check_json "per-context Chrome export" (Span.context_to_chrome c1)

(* ------------------------------------------------------------------ *)
(* Flight recorder. *)

let flight_summary i dur =
  {
    Flight.trace_id = i;
    route = "/v1/solve";
    status = 200;
    cache = (if i mod 2 = 0 then "hit" else "miss");
    t_start = float_of_int i;
    dur_s = dur;
    outcome = "optimal";
  }

let flight_ring_and_slowest () =
  Flight.set_capacity 4;
  Fun.protect ~finally:(fun () -> Flight.set_capacity Flight.default_capacity)
  @@ fun () ->
  check_int "capacity resized" 4 (Flight.capacity ());
  (* request i takes (11-i)/10 s: the earliest are the slowest *)
  for i = 1 to 10 do
    Flight.record
      ~summary:(flight_summary i (float_of_int (11 - i) /. 10.))
      ~spans:[]
  done;
  check_int "seen counts beyond the ring" 10 (Flight.seen ());
  let recent = Flight.recent () in
  check_int "ring keeps only capacity" 4 (List.length recent);
  check_true "recent is newest first"
    (List.map (fun s -> s.Flight.trace_id) recent = [ 10; 9; 8; 7 ]);
  let slow = Flight.slowest () in
  check_true "at most K slow traces" (List.length slow <= Flight.slowest_k);
  let durs = List.map (fun e -> e.Flight.summary.dur_s) slow in
  check_true "slowest first"
    (List.sort (fun a b -> compare b a) durs = durs);
  check_true "the slowest request survived ring eviction"
    (match slow with
    | e :: _ -> e.Flight.summary.trace_id = 1
    | [] -> false)

let flight_chrome_merges_contexts () =
  with_tracing ~fake_clock:true @@ fun () ->
  Flight.reset ();
  Fun.protect ~finally:(fun () -> Flight.reset ()) @@ fun () ->
  let record_request name =
    let ctx = Span.new_context () in
    Span.with_current ctx (fun () -> Span.with_ ~name (fun () -> ()));
    let spans = Span.context_spans ctx in
    Flight.record
      ~summary:(flight_summary (Span.trace_id ctx) 0.5)
      ~spans
  in
  record_request "req.one";
  record_request "req.two";
  let doc = Flight.to_chrome () in
  check_json "merged Chrome document" doc;
  let has sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length doc && (String.sub doc i n = sub || go (i + 1))
    in
    go 0
  in
  check_true "both request traces present" (has "req.one" && has "req.two")

(* ------------------------------------------------------------------ *)
(* Convergence curves. *)

let convergence_fold () =
  let module C = Prbp.Solver.Convergence in
  let conv, _sink = C.recorder () in
  C.observe conv ~t_s:0.1 ~lower:2 ~upper:None;
  C.observe conv ~t_s:0.2 ~lower:4 ~upper:(Some 9);
  (* a looser sighting must not widen the fold *)
  C.observe conv ~t_s:0.3 ~lower:3 ~upper:(Some 12);
  C.observe conv ~t_s:0.4 ~lower:4 ~upper:(Some 7);
  (* no-certificate sightings are ignored *)
  C.observe conv ~t_s:0.5 ~lower:max_int ~upper:None;
  let curve = C.curve conv in
  check_int "non-tightening sightings dropped" 3 (List.length curve);
  check_true "monotone" (C.monotone curve);
  (match C.final curve with
  | Some p ->
      check_int "final lower" 4 p.C.lower;
      check_true "final upper" (p.C.upper = Some 7)
  | None -> Alcotest.fail "no final point");
  check_true "time to width 5" (C.time_to_width curve 5 = Some 0.2);
  check_true "time to width 3" (C.time_to_width curve 3 = Some 0.4);
  check_true "width 0 never reached" (C.time_to_width curve 0 = None)

let convergence_from_solve () =
  let module C = Prbp.Solver.Convergence in
  let conv, sink = C.recorder () in
  let g, _ = Prbp.Graphs.Fig1.full () in
  let outcome = Prbp.Exact_rbp.solve ~telemetry:sink (Prbp.Rbp.config ~r:4 ()) g in
  let lo, up = Prbp.Solver.interval outcome in
  let curve = C.curve conv in
  check_true "solve produced a curve" (curve <> []);
  check_true "curve monotone" (C.monotone curve);
  match C.final curve with
  | Some p ->
      check_int "final lower equals the certified interval" lo p.C.lower;
      check_true "final upper equals the certified interval" (p.C.upper = up)
  | None -> Alcotest.fail "no final point"

let convergence_from_bracket () =
  let module C = Prbp.Solver.Convergence in
  let module B = Prbp.Bounds.Bracket in
  let g = (Prbp.Graphs.Fft.make ~m:8).Prbp.Graphs.Fft.dag in
  match B.prbp ~r:4 g with
  | Error e -> Alcotest.failf "bracket failed: %s" e
  | Ok b ->
      check_true "bracket curve non-empty" (b.B.curve <> []);
      check_true "bracket curve monotone" (C.monotone b.B.curve);
      (match C.final b.B.curve with
      | Some p ->
          check_int "final lower = bracket lower"
            b.B.lower.Prbp.Bounds.Lower.bound p.C.lower;
          check_true "final upper = bracket upper" (p.C.upper = Some b.B.upper)
      | None -> Alcotest.fail "no final point")

(* ------------------------------------------------------------------ *)
(* Metrics. *)

let metrics_counter_basics () =
  let c = Metrics.counter "test_obs_counter_basics" in
  let v0 = Metrics.Counter.value c in
  Metrics.Counter.incr c;
  check_int "disabled incr is a no-op" v0 (Metrics.Counter.value c);
  (with_metrics @@ fun () ->
   Metrics.Counter.incr c;
   Metrics.Counter.add c 4;
   check_int "incr + add" (v0 + 5) (Metrics.Counter.value c);
   check_true "negative add rejected"
     (match Metrics.Counter.add c (-1) with
     | () -> false
     | exception Invalid_argument _ -> true));
  let c' = Metrics.counter "test_obs_counter_basics" in
  check_int "re-registration returns the same instrument" (v0 + 5)
    (Metrics.Counter.value c')

let metrics_kind_and_name_checks () =
  let _ = Metrics.counter "test_obs_kind_clash" in
  check_true "kind mismatch rejected"
    (match Metrics.gauge "test_obs_kind_clash" with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_true "bad name rejected"
    (match Metrics.counter "0bad name" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let metrics_gauge_and_histogram () =
  with_metrics @@ fun () ->
  let g = Metrics.gauge "test_obs_gauge" in
  Metrics.Gauge.set g 2.5;
  Metrics.Gauge.max_ g 1.0;
  check_true "max_ below keeps value" (Metrics.Gauge.value g = 2.5);
  Metrics.Gauge.max_ g 7.0;
  check_true "max_ above raises value" (Metrics.Gauge.value g = 7.0);
  let h = Metrics.histogram ~labels:[ ("l", "a") ] "test_obs_hist_seconds" in
  List.iter (Metrics.Histogram.observe h) [ 0.5; 3.0; 100.; 0. ];
  check_int "histogram count" 4 (Metrics.Histogram.count h);
  check_true "histogram sum" (abs_float (Metrics.Histogram.sum h -. 103.5) < 1e-9)

let metrics_exporters () =
  with_metrics @@ fun () ->
  let c = Metrics.counter ~help:"hits" "test_obs_export_total" in
  Metrics.Counter.add c 3;
  let h = Metrics.histogram "test_obs_export_seconds" in
  Metrics.Histogram.observe h 0.25;
  let prom = Metrics.to_prometheus () in
  let has sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length prom && (String.sub prom i n = sub || go (i + 1))
    in
    go 0
  in
  check_true "counter family present" (has "# TYPE test_obs_export_total counter");
  check_true "help line present" (has "# HELP test_obs_export_total hits");
  check_true "histogram +Inf bucket"
    (has "test_obs_export_seconds_bucket{le=\"+Inf\"}");
  check_true "histogram count sample" (has "test_obs_export_seconds_count");
  check_json "metrics JSON snapshot" (Metrics.to_json ())

let metrics_histogram_snapshot_order () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "test_obs_snapshot_seconds" in
  List.iter (Metrics.Histogram.observe h) [ 0.001; 0.2; 5.0; 99.0 ];
  let buckets, count, sum = Metrics.Histogram.snapshot h in
  check_int "count" 4 count;
  check_true "sum" (abs_float (sum -. 104.201) < 1e-9);
  let les = List.map fst buckets in
  check_true "bucket bounds strictly ascending"
    (List.sort_uniq compare les = les);
  let counts = List.map snd buckets in
  check_true "cumulative counts non-decreasing"
    (List.sort compare counts = counts);
  check_true "last finite bucket holds every observation"
    (match List.rev buckets with
    | (_, c) :: _ -> c = count
    | [] -> false)

(* The Prometheus exposition of one histogram family, byte for byte:
   buckets in ascending [le] order, +Inf equal to _count.  Values land
   in the two lowest power-of-two buckets so the golden stays short. *)
let metrics_prometheus_histogram_golden () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram ~help:"golden" "test_obs_golden_seconds" in
  List.iter (Metrics.Histogram.observe h) [ 0.; 3e-10 ];
  let family () =
    let keep line =
      let sub = "test_obs_golden_seconds" in
      let n = String.length sub in
      let rec go i =
        i + n <= String.length line
        && (String.sub line i n = sub || go (i + 1))
      in
      go 0
    in
    String.concat "\n"
      (List.filter keep (String.split_on_char '\n' (Metrics.to_prometheus ())))
  in
  let got = family () in
  Alcotest.(check string) "byte-stable across exports" got (family ());
  Alcotest.(check string) "golden exposition"
    "# HELP test_obs_golden_seconds golden\n\
     # TYPE test_obs_golden_seconds histogram\n\
     test_obs_golden_seconds_bucket{le=\"2.32831e-10\"} 1\n\
     test_obs_golden_seconds_bucket{le=\"4.65661e-10\"} 2\n\
     test_obs_golden_seconds_bucket{le=\"+Inf\"} 2\n\
     test_obs_golden_seconds_sum 3e-10\n\
     test_obs_golden_seconds_count 2"
    got

(* ------------------------------------------------------------------ *)
(* Telemetry JSON lines (the [%S]-escaping fix). *)

let dummy_progress : Prbp.Solver.Telemetry.progress =
  {
    expansions = 1;
    explored = 2;
    pruned = 3;
    frontier = 4;
    depth = 5;
    table_load = 0.5;
    elapsed_s = 0.25;
    lower = 6;
    upper = Some 9;
  }

let telemetry_lines_are_json =
  qcase ~count:100 "Wire.encode_event: every event line parses as JSON"
    QCheck.printable_string
    (fun outcome ->
      List.for_all
        (fun ev -> json_valid (Prbp.Wire.encode_event ev))
        [
          Prbp.Solver.Telemetry.Start { width = 3; max_states = 10 };
          Prbp.Solver.Telemetry.Progress dummy_progress;
          Prbp.Solver.Telemetry.Prune { pruned = 7 };
          Prbp.Solver.Telemetry.Stop { outcome; progress = dummy_progress };
        ])

(* ------------------------------------------------------------------ *)
(* Integration: what the solver and bracket layers publish. *)

let engine_counter_matches_stats () =
  let c = Metrics.counter "prbp_engine_expansions_total" in
  let s = Metrics.counter "prbp_engine_solves_total" in
  with_metrics @@ fun () ->
  let c0 = Metrics.Counter.value c and s0 = Metrics.Counter.value s in
  let g, _ = Prbp.Graphs.Fig1.full () in
  let outcome = Prbp.Exact_prbp.solve (Prbp.Prbp_game.config ~r:4 ()) g in
  let stats = Prbp.Solver.stats_of outcome in
  check_int "expansions counter delta = stats.expansions"
    stats.Prbp.Solver.expansions
    (Metrics.Counter.value c - c0);
  check_int "one solve recorded" 1 (Metrics.Counter.value s - s0)

let engine_solve_span () =
  with_tracing @@ fun () ->
  let g, _ = Prbp.Graphs.Fig1.full () in
  ignore (Prbp.Exact_rbp.solve (Prbp.Rbp.config ~r:4 ()) g);
  match
    List.find_opt (fun s -> s.Span.name = "solve.rbp") (Span.spans ())
  with
  | None -> Alcotest.fail "no solve.rbp span recorded"
  | Some s ->
      check_true "outcome attr" (List.mem_assoc "outcome" s.Span.attrs);
      check_true "expansions attr" (List.mem_assoc "expansions" s.Span.attrs)

let bracket_stage_spans () =
  with_tracing @@ fun () ->
  let g = (Prbp.Graphs.Fft.make ~m:8).Prbp.Graphs.Fft.dag in
  (match Prbp.Bounds.Bracket.rbp ~r:4 g with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "bracket failed: %s" e);
  let ss = Span.spans () in
  let find n = List.find_opt (fun s -> s.Span.name = n) ss in
  match (find "bracket", find "bracket.lower", find "bracket.upper") with
  | Some b, Some lo, Some up ->
      let dur s = s.Span.t1 -. s.Span.t0 in
      check_true "lower stage nests in bracket" (lo.Span.parent = b.Span.id);
      check_true "upper stage nests in bracket" (up.Span.parent = b.Span.id);
      let stage_sum =
        List.fold_left
          (fun acc n -> match find n with Some s -> acc +. dur s | None -> acc)
          0.
          [ "bracket.lower"; "bracket.upper"; "bracket.profile" ]
      in
      check_true "stages sum within the bracket span"
        (stage_sum <= dur b +. 1e-6);
      check_true "outcome attr on bracket"
        (List.mem_assoc "outcome" b.Span.attrs)
  | _ -> Alcotest.fail "missing bracket/stage spans"

let bracket_stage_metric () =
  with_metrics @@ fun () ->
  let h =
    Metrics.histogram ~labels:[ ("stage", "lower") ]
      "prbp_bracket_stage_seconds"
  in
  let n0 = Metrics.Histogram.count h in
  let g = (Prbp.Graphs.Fft.make ~m:8).Prbp.Graphs.Fft.dag in
  (match Prbp.Bounds.Bracket.prbp ~r:4 g with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "bracket failed: %s" e);
  check_int "one lower-stage observation" 1 (Metrics.Histogram.count h - n0)

let suite =
  [
    ( "obs",
      [
        case "clock: backwards source step never rewinds now()"
          clock_monotonic;
        case "clock: deadline helpers" clock_deadlines;
        span_well_formed;
        case "span: exporters byte-stable under a fake clock"
          span_exporters_byte_stable;
        span_chrome_valid_any_strings;
        case "span: disabled tracer is transparent"
          span_disabled_is_transparent;
        case "span: recorded even when the body raises"
          span_records_on_raise;
        case "span: concurrent contexts stay disjoint"
          span_context_isolation;
        case "flight: ring eviction keeps the slowest traces"
          flight_ring_and_slowest;
        case "flight: Chrome export merges request traces"
          flight_chrome_merges_contexts;
        case "convergence: monotone fold of sightings" convergence_fold;
        case "convergence: solve curve ends at the certified interval"
          convergence_from_solve;
        case "convergence: bracket curve ends at the certified bracket"
          convergence_from_bracket;
        case "metrics: counter gating, dedup, monotonicity"
          metrics_counter_basics;
        case "metrics: kind and name validation" metrics_kind_and_name_checks;
        case "metrics: gauge high-water mark and histogram buckets"
          metrics_gauge_and_histogram;
        case "metrics: Prometheus and JSON exporters" metrics_exporters;
        case "metrics: histogram snapshot is ascending and consistent"
          metrics_histogram_snapshot_order;
        case "metrics: Prometheus histogram golden (ascending buckets)"
          metrics_prometheus_histogram_golden;
        telemetry_lines_are_json;
        case "engine: registry counters match solve stats"
          engine_counter_matches_stats;
        case "engine: solve span carries terminal telemetry"
          engine_solve_span;
        case "bracket: stage spans nest and sum within the run"
          bracket_stage_spans;
        case "bracket: stage histogram observed per run" bracket_stage_metric;
      ] );
  ]

(* lib/bounds/Lower as a rule engine: every registered rule must be
   sound against the exact optima wherever those are computable, the
   registry must reject collisions and honor selection, and the
   constructive-partition path must agree with exhaustive Minpart. *)
open Test_util
module Dag = Prbp.Dag
module MP = Prbp.Minpart
module Segment = Prbp.Bounds.Segment
module Lower = Prbp.Bounds.Lower
module Upper = Prbp.Bounds.Upper

let exact game ~r g =
  match game with
  | Lower.Rbp -> opt_rbp_opt (Prbp.Rbp.config ~r ()) g
  | Lower.Prbp -> opt_prbp_opt (Prbp.Prbp_game.config ~r ()) g

(* [exact], but tolerating budget-truncated searches ([None]) so the
   family cases can include instances near the exact solvers' edge. *)
let exact_tolerant game ~r g =
  match game with
  | Lower.Rbp -> tolerant (Prbp.Exact_rbp.solve (Prbp.Rbp.config ~r ()) g)
  | Lower.Prbp ->
      tolerant (Prbp.Exact_prbp.solve (Prbp.Prbp_game.config ~r ()) g)

(* Every (label, bound) pair a Lower.compute run evaluated must sit at
   or below the exact optimum — not just the winner. *)
let all_bounds_sound what game ~r g =
  match exact_tolerant game ~r g with
  | None (* truncated *) | Some None (* no strategy at this r *) -> ()
  | Some (Some opt) ->
      let l = Lower.compute ~game ~r g in
      List.iter
        (fun (label, bound) ->
          check_true
            (Printf.sprintf "%s %s r=%d: %s bound %d <= OPT %d" what
               (Lower.game_label game) r label bound opt)
            (bound <= opt))
        l.Lower.evaluated;
      check_true (what ^ ": winner <= OPT") (l.Lower.bound <= opt)

let test_registry_names () =
  let names = Lower.names () in
  List.iter
    (fun expected ->
      check_true ("registered: " ^ expected) (List.mem expected names))
    [
      "trivial"; "source-cut"; "sink-cut"; "closed-form"; "exact-dominator";
      "exact-spartition"; "exact-edge";
    ];
  (* re-registering any existing name must be rejected *)
  List.iter
    (fun name ->
      check_true ("duplicate rejected: " ^ name)
        (match
           Lower.register
             (module struct
               let name = name
               let games = [ Lower.Rbp ]
               let share = 0
               let applies ~budget:_ ~game:_ ~r:_ _ = false
               let compute ~budget:_ ~game:_ ~r:_ _ = []
             end)
         with
        | exception Invalid_argument _ -> true
        | () -> false))
    names

let test_rule_selection () =
  let g = Prbp.Graphs.Basic.fan_in 5 in
  let l = Lower.compute ~rules:[ "source-cut" ] ~game:Lower.Rbp ~r:2 g in
  check_true "only source-cut ran"
    (List.for_all (fun (label, _) -> label = "source-cut") l.Lower.evaluated);
  let l = Lower.compute ~rules:[ "no-such-rule" ] ~game:Lower.Rbp ~r:2 g in
  check_int "empty selection falls back to bound 0" 0 l.Lower.bound;
  Alcotest.(check string) "and reports no rule" "none" l.Lower.rule

(* Soundness on family-tagged DAGs, where the closed-form rule fires:
   small instances of each registered family, exact OPT as the oracle. *)
let test_closed_forms_sound () =
  let cases =
    [
      ("fft:4", (Prbp.Graphs.Fft.make ~m:4).Prbp.Graphs.Fft.dag, [ 3; 4 ]);
      ( "matmul:2:2:2",
        (Prbp.Graphs.Matmul.make ~m1:2 ~m2:2 ~m3:2).Prbp.Graphs.Matmul.dag,
        [ 2; 3 ] );
      ( "tree(2,2) at r=k+1",
        (Prbp.Graphs.Tree.make ~k:2 ~depth:2).Prbp.Graphs.Tree.dag,
        [ 3 ] );
      ( "attention-qkt:2:2",
        (Prbp.Graphs.Attention.qkt ~m:2 ~d:2).Prbp.Graphs.Matmul.dag,
        [ 2; 3 ] );
    ]
  in
  List.iter
    (fun (what, g, rs) ->
      check_true (what ^ " is tagged") (Dag.family g <> None);
      List.iter
        (fun r ->
          all_bounds_sound what Lower.Rbp ~r g;
          all_bounds_sound what Lower.Prbp ~r g)
        rs)
    cases

(* The tree-opt closed form is exact OPT at r = k+1 and unsound
   elsewhere; the registry must therefore only emit it at r = k+1. *)
let test_tree_form_gated () =
  List.iter
    (fun (r, expected) ->
      let forms = Prbp.Graphs.Closed_form.forms ~game:`Rbp ~r "tree:2:3" in
      check_bool
        (Printf.sprintf "tree-opt emitted iff r=3 (r=%d)" r)
        expected
        (List.exists (fun (name, _) -> name = "tree-opt") forms))
    [ (2, false); (3, true); (4, false) ]

let gen_dag =
  QCheck.make
    ~print:(fun (seed, layers, width) ->
      Printf.sprintf "seed=%d layers=%d width=%d" seed layers width)
    QCheck.Gen.(triple (int_range 1 10_000) (int_range 2 3) (int_range 1 3))

let dag_of (seed, layers, width) =
  Prbp.Graphs.Random_dag.make ~seed ~layers ~width ~density:0.35
    ~max_in_degree:3 ()

(* satellite (c), first half: on random small DAGs, every registered
   rule's every evaluated bound is at or below exact OPT, both games *)
let prop_rules_sound game label =
  qcase ~count:30
    (label ^ ": every registered rule stays below the exact optimum")
    gen_dag
    (fun params ->
      let g = dag_of params in
      let r = 3 in
      match exact game ~r g with
      | None -> true
      | Some opt ->
          let l = Lower.compute ~game ~r g in
          List.for_all (fun (_, bound) -> bound <= opt) l.Lower.evaluated
          && l.Lower.bound <= opt)

(* satellite (c), second half: a constructive partition fed back as the
   early-certification witness must reproduce the exhaustive minimum
   exactly, whenever the exhaustive search finishes *)
let prop_constructive_agrees =
  qcase ~count:30
    "constructive partitions agree with exhaustive Minpart counts" gen_dag
    (fun params ->
      let g = dag_of params in
      let s = 3 in
      List.for_all
        (fun (flavor, search) ->
          match (search ?upper_witness:None g ~s : MP.verdict) with
          | MP.Truncated _ -> true (* nothing exhaustive to compare *)
          | MP.No_partition -> true
          | MP.Minimum { classes = exact_min; _ } -> (
              match Segment.greedy ~flavor g ~s with
              | Error _ -> true (* no constructive partition to test *)
              | Ok seg ->
                  (* constructive can never beat the exact minimum … *)
                  Segment.n_classes seg >= exact_min
                  (* … and seeding it certifies the same minimum *)
                  &&
                  match
                    search ?upper_witness:(Some seg.Segment.classes) g ~s
                  with
                  | MP.Minimum { classes; _ } -> classes = exact_min
                  | MP.No_partition | MP.Truncated _ -> false))
        [
          ( Segment.Spartition,
            fun ?upper_witness g ~s -> MP.spartition ?upper_witness g ~s );
          ( Segment.Dominator,
            fun ?upper_witness g ~s ->
              MP.dominator_partition ?upper_witness g ~s );
          ( Segment.Edge,
            fun ?upper_witness g ~s -> MP.edge_partition ?upper_witness g ~s );
        ])

(* the banded orders behind the new upper-bound candidates must be
   valid topological orders on any DAG, for every band height *)
let prop_banded_order_topological =
  qcase ~count:50 "banded orders are topological" gen_dag (fun params ->
      let g = dag_of params in
      List.for_all
        (fun h -> Prbp.Topo.is_order g (Upper.banded_order g ~h))
        [ 1; 2; 3; 5 ])

let suite =
  [
    ( "rules",
      [
        case "registry names and duplicate rejection" test_registry_names;
        case "rule selection" test_rule_selection;
        slow_case "closed forms sound on tagged families"
          test_closed_forms_sound;
        case "tree closed form gated to r=k+1" test_tree_form_gated;
        prop_rules_sound Lower.Rbp "RBP";
        prop_rules_sound Lower.Prbp "PRBP";
        prop_constructive_agrees;
        prop_banded_order_topological;
      ] );
  ]

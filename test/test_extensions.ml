(* Extensions beyond the paper's core: SpMV and Horner families,
   eviction-policy ablation, solver statistics. *)
open Test_util
module Dag = Prbp.Dag
module Spmv = Prbp.Graphs.Spmv

let test_spmv_shape () =
  let sp = Spmv.make ~seed:1 ~rows:5 ~cols:6 () in
  let g = sp.Spmv.dag in
  check_int "nodes" ((2 * Spmv.nnz sp) + 5 + 6) (Dag.n_nodes g);
  check_false "no isolated" (Dag.has_isolated_nodes g);
  check_int "sources" (Spmv.nnz sp + 6) (Dag.n_sources g);
  check_int "sinks" 5 (Dag.n_sinks g);
  check_int "trivial" (Spmv.trivial_cost sp) (Dag.trivial_cost g);
  (* every product node has in-degree 2 and out-degree 1 *)
  for e = 0 to Spmv.nnz sp - 1 do
    check_int "p in" 2 (Dag.in_degree g (Spmv.p sp e));
    check_int "p out" 1 (Dag.out_degree g (Spmv.p sp e))
  done

let test_spmv_rows_cols_nonempty () =
  (* sparse corners: very low density still yields full coverage *)
  let sp = Spmv.make ~seed:7 ~density:0.01 ~rows:10 ~cols:10 () in
  check_true "nnz >= max(rows, cols)" (Spmv.nnz sp >= 10);
  let g = sp.Spmv.dag in
  for i = 0 to 9 do
    check_true "row nonempty" (Dag.in_degree g (Spmv.y sp i) >= 1)
  done

let test_spmv_streaming_strategy () =
  List.iter
    (fun (seed, rows, cols, density) ->
      let sp = Spmv.make ~seed ~density ~rows ~cols () in
      let g = sp.Spmv.dag in
      let r = rows + 3 in
      let cost = prbp_cost ~r g (Prbp.Strategies.spmv_prbp sp) in
      check_int "trivial cost achieved" (Spmv.trivial_cost sp) cost;
      (* peak usage is rows + 3 at most *)
      let eng =
        Prbp.Prbp_game.run_exn
          (Prbp.Prbp_game.config ~r ())
          g (Prbp.Strategies.spmv_prbp sp)
      in
      check_true "peak within rows+3"
        (Prbp.Prbp_game.max_red_seen eng <= rows + 3))
    [ (1, 4, 4, 0.3); (2, 6, 3, 0.5); (3, 8, 8, 0.15); (4, 3, 9, 0.4) ]

let test_spmv_vs_rbp () =
  (* the PRBP advantage carries over to irregular patterns *)
  let sp = Spmv.make ~seed:5 ~density:0.4 ~rows:6 ~cols:6 () in
  let g = sp.Spmv.dag in
  let r = Dag.max_in_degree g + 1 in
  let rbp = Prbp.Heuristic.rbp_cost ~r g in
  let prbp = prbp_cost ~r:(max (6 + 3) r) g (Prbp.Strategies.spmv_prbp sp) in
  check_true "prbp at most rbp" (prbp <= rbp)

let test_horner_shape () =
  let g = Prbp.Graphs.Basic.horner 5 in
  check_int "nodes" 12 (Dag.n_nodes g);
  check_int "sources" 7 (Dag.n_sources g);
  check_int "sinks" 1 (Dag.n_sinks g);
  check_int "x out-degree" 5 (Dag.out_degree g 0);
  check_int "Δin" 3 (Dag.max_in_degree g)

let test_horner_strategy () =
  List.iter
    (fun n ->
      let g = Prbp.Graphs.Basic.horner n in
      let cost = prbp_cost ~r:3 g (Prbp.Strategies.horner_prbp g) in
      check_int "trivial" (Dag.trivial_cost g) cost)
    [ 1; 2; 3; 8; 20 ]

let test_horner_rbp_needs_r4 () =
  (* Δin = 3 for n >= 2, so RBP cannot play at r = 3 while PRBP can *)
  let g = Prbp.Graphs.Basic.horner 4 in
  check_true "no RBP pebbling at r=3"
    (Test_util.opt_rbp_opt (Prbp.Rbp.config ~r:3 ()) g = None);
  check_int "PRBP plays at r=3" (Dag.trivial_cost g)
    (Test_util.opt_prbp (Prbp.Prbp_game.config ~r:3 ()) g)

let test_policies_all_valid () =
  List.iter
    (fun g ->
      List.iter
        (fun policy ->
          let c = Prbp.Heuristic.prbp_cost ~policy ~r:3 g in
          check_true "valid" (c >= Dag.trivial_cost g);
          let r = Dag.max_in_degree g + 1 in
          let c' = Prbp.Heuristic.rbp_cost ~policy ~r g in
          check_true "valid rbp" (c' >= Dag.trivial_cost g))
        Prbp.Heuristic.[ Belady; Lru; Fifo ])
    (Lazy.force random_dags)

let test_belady_not_worse_on_zipper () =
  (* the zipper punishes recency-based eviction: Belady must not lose *)
  let z = Prbp.Graphs.Zipper.make ~d:4 ~len:10 in
  let g = z.Prbp.Graphs.Zipper.dag in
  let bel = Prbp.Heuristic.rbp_cost ~policy:Prbp.Heuristic.Belady ~r:6 g in
  let lru = Prbp.Heuristic.rbp_cost ~policy:Prbp.Heuristic.Lru ~r:6 g in
  let fifo = Prbp.Heuristic.rbp_cost ~policy:Prbp.Heuristic.Fifo ~r:6 g in
  check_true "belady <= lru" (bel <= lru);
  check_true "belady <= fifo" (bel <= fifo)

let explored_of (o : _ S.optimal) = o.S.stats.S.explored

let test_opt_stats () =
  let g, _ = Prbp.Graphs.Fig1.full () in
  let solve ?eager_deletes () =
    settled "Exact_rbp"
      (Prbp.Exact_rbp.solve ?eager_deletes (Prbp.Rbp.config ~r:4 ()) g)
  in
  (match solve () with
  | Some o ->
      check_int "cost" 3 o.S.cost;
      check_true "states positive" (explored_of o > 0)
  | None -> Alcotest.fail "solvable");
  (* disabling the pruning explores strictly more states, same cost *)
  match (solve (), solve ~eager_deletes:true ()) with
  | Some o1, Some o2 ->
      check_int "same optimum" o1.S.cost o2.S.cost;
      check_true "pruning helps" (explored_of o1 <= explored_of o2)
  | _ -> Alcotest.fail "solvable"

let test_opt_stats_prbp () =
  let g, _ = Prbp.Graphs.Fig1.full () in
  let solve ?eager_deletes () =
    settled "Exact_prbp"
      (Prbp.Exact_prbp.solve ?eager_deletes (Prbp.Prbp_game.config ~r:4 ()) g)
  in
  match (solve (), solve ~eager_deletes:true ()) with
  | Some o1, Some o2 ->
      check_int "same optimum" 2 o1.S.cost;
      check_int "ablation same optimum" o1.S.cost o2.S.cost;
      check_true "pruning reduces states" (explored_of o1 <= explored_of o2)
  | _ -> Alcotest.fail "solvable"

let test_ablation_optimum_unchanged_on_pool () =
  List.iter
    (fun g ->
      if Dag.n_nodes g <= 9 && Dag.n_edges g <= 16 then begin
        let r = Dag.max_in_degree g + 1 in
        match
          ( opt_rbp_opt (Prbp.Rbp.config ~r ()) g,
            opt_rbp_opt ~eager_deletes:true (Prbp.Rbp.config ~r ()) g )
        with
        | Some c1, Some c2 -> check_int "same" c1 c2
        | None, None -> ()
        | _ -> Alcotest.fail "prune changed solvability"
      end)
    (Lazy.force random_dags)

let suite =
  [
    ( "extensions",
      [
        case "SpMV DAG shape" test_spmv_shape;
        case "SpMV coverage at low density" test_spmv_rows_cols_nonempty;
        case "SpMV streaming strategy" test_spmv_streaming_strategy;
        case "SpMV PRBP <= RBP" test_spmv_vs_rbp;
        case "Horner DAG shape" test_horner_shape;
        case "Horner strategy trivial at r=3" test_horner_strategy;
        case "Horner: RBP needs r=4, PRBP r=3" test_horner_rbp_needs_r4;
        case "all eviction policies valid" test_policies_all_valid;
        case "Belady dominates on the zipper" test_belady_not_worse_on_zipper;
        case "solver stats + RBP ablation" test_opt_stats;
        case "PRBP ablation" test_opt_stats_prbp;
        case "ablation never changes optima" test_ablation_optimum_unchanged_on_pool;
      ] );
  ]

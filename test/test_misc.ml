(* Coverage of smaller API surfaces: printers, DOT attributes, charts,
   tables, reverse/induced views, engine state dumps. *)
open Test_util
module Dag = Prbp.Dag
module Bitset = Prbp.Bitset

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_dag_pp () =
  let g, _ = Prbp.Graphs.Fig1.full () in
  let s = Format.asprintf "%a" Dag.pp g in
  check_true "mentions counts" (contains s "n=10" && contains s "m=14");
  let full = Format.asprintf "%a" Dag.pp_full g in
  check_true "adjacency listed" (contains full "u1 ->")

let test_dot_highlights () =
  let g = Prbp.Graphs.Basic.diamond () in
  let hl = Bitset.of_list 4 [ 0 ] in
  let ehl = Bitset.of_list (Dag.n_edges g) [ 0 ] in
  let dot = Prbp.Dot.to_string ~highlight:hl ~edge_highlight:ehl ~rankdir:"LR" g in
  check_true "node fill" (contains dot "fillcolor");
  check_true "edge color" (contains dot "penwidth");
  check_true "rankdir" (contains dot "rankdir=LR")

let test_move_printers () =
  check_true "rbp slide"
    (contains (Prbp.Move.R.to_string (Prbp.Move.R.Slide (1, 2))) "slide");
  check_true "prbp clear"
    (contains (Prbp.Move.P.to_string (Prbp.Move.P.Clear 7)) "clear");
  check_true "io classification"
    (Prbp.Move.R.is_io (Prbp.Move.R.Load 0)
    && (not (Prbp.Move.R.is_io (Prbp.Move.R.Compute 0)))
    && Prbp.Move.P.is_io (Prbp.Move.P.Save 0)
    && not (Prbp.Move.P.is_io (Prbp.Move.P.Compute (0, 1))))

let test_engine_state_printers () =
  let g, ids = Prbp.Graphs.Fig1.full () in
  let t = Prbp.Rbp.start (Prbp.Rbp.config ~r:4 ()) g in
  check_ok "load" (Prbp.Rbp.apply t (Prbp.Move.R.Load ids.Prbp.Graphs.Fig1.u0));
  let s = Format.asprintf "%a" Prbp.Rbp.pp_state t in
  check_true "red named" (contains s "red {u0}");
  check_true "io" (contains s "io=1");
  let tp = Prbp.Prbp_game.start (Prbp.Prbp_game.config ~r:4 ()) g in
  check_ok "pload" (Prbp.Prbp_game.apply tp (Prbp.Move.P.Load ids.u0));
  let sp = Format.asprintf "%a" Prbp.Prbp_game.pp_state tp in
  check_true "prbp state" (contains sp "u0:B+lr");
  check_true "marks" (contains sp "marked 0/14")

let test_reverse_and_induced_roundtrip () =
  let g = Prbp.Graphs.Basic.pyramid 2 in
  let rr = Dag.reverse (Dag.reverse g) in
  Alcotest.(check (list (pair int int))) "double reverse" (Dag.edges g)
    (Dag.edges rr);
  let keep = Bitset.create (Dag.n_nodes g) in
  Bitset.fill keep;
  let sub, back = Dag.induced g keep in
  check_int "full induced keeps everything" (Dag.n_edges g) (Dag.n_edges sub);
  check_int "identity mapping" 0 back.(0)

let test_table_csv_roundtripish () =
  let t = Prbp.Table.make ~header:[ "a"; "b" ] in
  Prbp.Table.add_row t [ "1"; "hello world" ];
  Prbp.Table.add_row t [ "2"; "with,comma" ];
  let csv = Prbp.Table.to_csv t in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "three lines" 3 (List.length lines);
  check_true "escaped" (contains csv "\"with,comma\"")

let test_chart_multi_series () =
  let mk label glyph k =
    {
      Prbp.Chart.label;
      glyph;
      points = List.init 5 (fun i -> (float_of_int (i + 1), k *. float_of_int (i + 1)));
    }
  in
  let s = Prbp.Chart.loglog ~x_label:"x" ~y_label:"y" [ mk "one" '#' 1.; mk "two" 'o' 10. ] in
  check_true "both glyphs" (contains s "#" && contains s "o");
  check_true "legend" (contains s "= one" && contains s "= two")

let test_experiment_failure_path () =
  let e =
    Prbp.Experiment.make ~id:"X" ~paper:"p" ~claim:"false" (fun _ _ -> false)
  in
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  check_false "not confirmed" (Prbp.Experiment.run_one ppf e);
  Format.pp_print_flush ppf ();
  check_true "printed verdict" (contains (Buffer.contents buf) "NOT CONFIRMED")

let test_trivial_cost_edge_cases () =
  (* a single isolated node is both source and sink: counted twice *)
  let g = Dag.make ~n:1 [] in
  check_int "isolated trivial" 2 (Dag.trivial_cost g)

let test_ugraph_complement_involution () =
  let g = Prbp.Graphs.Ugraph.cycle_graph 6 in
  let gc = Prbp.Graphs.Ugraph.complement (Prbp.Graphs.Ugraph.complement g) in
  Alcotest.(check (list (pair int int))) "edges preserved"
    (Prbp.Graphs.Ugraph.edges g)
    (Prbp.Graphs.Ugraph.edges gc)

let test_topo_edge_order_complete () =
  let g = (Prbp.Graphs.Matmul.make ~m1:2 ~m2:2 ~m3:2).Prbp.Graphs.Matmul.dag in
  let eo = Prbp.Topo.edge_order g in
  check_int "covers all edges" (Dag.n_edges g) (Array.length eo);
  let sorted = Array.copy eo in
  Array.sort compare sorted;
  check_true "is a permutation" (Array.to_list sorted = List.init (Dag.n_edges g) (fun i -> i))

let suite =
  [
    ( "misc",
      [
        case "DAG printers" test_dag_pp;
        case "DOT highlights" test_dot_highlights;
        case "move printers" test_move_printers;
        case "engine state printers" test_engine_state_printers;
        case "reverse/induced" test_reverse_and_induced_roundtrip;
        case "table CSV" test_table_csv_roundtripish;
        case "chart multi-series" test_chart_multi_series;
        case "experiment failure path" test_experiment_failure_path;
        case "trivial-cost edge case" test_trivial_cost_edge_cases;
        case "complement involution" test_ugraph_complement_involution;
        case "edge order permutation" test_topo_edge_order_complete;
      ] );
  ]

(* appended: strategy post-optimizer *)

let opt_rcost moves g r =
  match Prbp.Rbp.check (Prbp.Rbp.config ~r ()) g moves with
  | Ok c -> c
  | Error e -> Alcotest.fail e

let test_optimizer_removes_padding () =
  let g = Prbp.Graphs.Basic.diamond () in
  let module R = Prbp.Move.R in
  (* a valid but wasteful strategy: pointless early save + reload *)
  let padded =
    R.[
      Load 0; Save 0; Compute 1; Delete 0; Load 0; Compute 2; Delete 0;
      Compute 3; Save 3;
    ]
  in
  let before = opt_rcost padded g 3 in
  let slim = Prbp.Optimize.rbp (Prbp.Rbp.config ~r:3 ()) g padded in
  let after = opt_rcost slim g 3 in
  check_true "improved" (after < before);
  check_int "reaches the optimum here" 2 after

let test_optimizer_keeps_optimal () =
  let g, ids = Prbp.Graphs.Fig1.full () in
  let moves = Prbp.Strategies.fig1_prbp ids in
  let slim = Prbp.Optimize.prbp (Prbp.Prbp_game.config ~r:4 ()) g moves in
  match Prbp.Prbp_game.check (Prbp.Prbp_game.config ~r:4 ()) g slim with
  | Ok c -> check_int "still 2" 2 c
  | Error e -> Alcotest.fail e

let test_optimizer_on_heuristic_traces () =
  List.iter
    (fun g ->
      let r = 3 in
      let moves = Prbp.Heuristic.prbp ~r g in
      let before = prbp_cost ~r g moves in
      let slim = Prbp.Optimize.prbp (Prbp.Prbp_game.config ~r ()) g moves in
      let after = prbp_cost ~r g slim in
      check_true "never worse" (after <= before);
      check_true "still above trivial" (after >= Dag.trivial_cost g))
    (Lazy.force random_dags)

let test_optimizer_rejects_invalid_input () =
  let g = Prbp.Graphs.Basic.diamond () in
  check_true "invalid input"
    (match Prbp.Optimize.rbp (Prbp.Rbp.config ~r:3 ()) g [ Prbp.Move.R.Load 0 ] with
    | exception Failure _ -> true
    | _ -> false)

let suite =
  suite
  @ [
      ( "optimize",
        [
          case "removes padding" test_optimizer_removes_padding;
          case "keeps optimal strategies intact" test_optimizer_keeps_optimal;
          case "never worsens heuristic traces" test_optimizer_on_heuristic_traces;
          case "rejects invalid input" test_optimizer_rejects_invalid_input;
        ] );
    ]

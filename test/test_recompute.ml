(* Exact search for the PRBP re-computation variant (Appendix B.1). *)
open Test_util
module Dag = Prbp.Dag
module Pg = Prbp.Prbp_game

let pcfg ?(recompute = false) r =
  Pg.config ~one_shot:(not recompute) ~recompute ~r ()

let test_fig1_unaffected () =
  (* B.1: PRBP was already at the trivial cost on Figure 1, so
     re-computation gains nothing *)
  let g, _ = Prbp.Graphs.Fig1.full () in
  check_int "one-shot" 2 (Test_util.opt_prbp (pcfg 4) g);
  check_int "recompute" 2 (Test_util.opt_prbp (pcfg ~recompute:true 4) g)

let test_recompute_never_worse () =
  (* dropping the one-shot restriction can only help *)
  List.iter
    (fun g ->
      if Dag.n_nodes g <= 8 && Dag.n_edges g <= 14 then
        List.iter
          (fun r ->
            match
              ( tolerant (Prbp.Exact_prbp.solve (pcfg r) g),
                tolerant (Prbp.Exact_prbp.solve (pcfg ~recompute:true r) g) )
            with
            | Some (Some a), Some (Some b) ->
                check_true "recompute <= one-shot" (b <= a)
            | _ -> ())
          [ 2; 3 ])
    (Lazy.force random_dags)

let witness_gap_dag () =
  (* a 6-node DAG found by exhaustive search where re-computation
     strictly helps PRBP at r = 2 *)
  Dag.make ~n:6
    [ (0, 2); (0, 3); (0, 4); (1, 2); (1, 4); (2, 4); (2, 5); (3, 4); (3, 5) ]

let test_gap_witness () =
  let g = witness_gap_dag () in
  let one_shot = Test_util.opt_prbp (pcfg 2) g in
  let rc = Test_util.opt_prbp (pcfg ~recompute:true 2) g in
  check_int "one-shot optimum" 10 one_shot;
  check_int "recompute optimum" 9 rc;
  check_true "strict gap" (rc < one_shot)

let test_recompute_strategy_replays () =
  (* the reconstructed optimal strategy (with Clear moves) replays
     through the rule-checking engine at the same cost *)
  let g = witness_gap_dag () in
  match Test_util.prbp_strategy (pcfg ~recompute:true 2) g with
  | None -> Alcotest.fail "no strategy"
  | Some (c, moves) -> (
      check_int "cost" 9 c;
      check_true "uses clear"
        (List.exists (function Prbp.Move.P.Clear _ -> true | _ -> false) moves);
      match Pg.check (pcfg ~recompute:true 2) g moves with
      | Ok c' -> check_int "replay" c c'
      | Error e -> Alcotest.failf "replay failed: %s" e)

let test_clear_edge_semantics_in_search () =
  (* the searched Clear matches the engine: marks of in-edges revert,
     so a cleared chain must be recomputed in order *)
  let g = Prbp.Graphs.Basic.path 3 in
  (* optimal cost is unaffected on a path (no sharing to exploit) *)
  check_int "path" 2 (Test_util.opt_prbp (pcfg ~recompute:true 2) g)

let suite =
  [
    ( "recompute",
      [
        case "fig1 unaffected" test_fig1_unaffected;
        case "recompute never worse" test_recompute_never_worse;
        case "strict gap witness" test_gap_witness;
        case "optimal strategy replays" test_recompute_strategy_replays;
        case "clear semantics on a path" test_clear_edge_semantics_in_search;
      ] );
  ]

(* lib/bounds/Bracket: wherever the exact solvers can reach, a bracket
   must contain the optimum, and every certificate it embeds must
   re-validate independently of the code that built it. *)
open Test_util
module Dag = Prbp.Dag
module Segment = Prbp.Bounds.Segment
module Lower = Prbp.Bounds.Lower
module Upper = Prbp.Bounds.Upper
module Bracket = Prbp.Bounds.Bracket

let small_graphs =
  lazy
    ([
       ("diamond", Prbp.Graphs.Basic.diamond ());
       ("pyramid(3)", Prbp.Graphs.Basic.pyramid 3);
       ("fan_in(4)", Prbp.Graphs.Basic.fan_in 4);
       ("horner(3)", Prbp.Graphs.Basic.horner 3);
       ("path(6)", Prbp.Graphs.Basic.path 6);
       ("fig1", fst (Prbp.Graphs.Fig1.full ()));
     ]
    @ List.filteri
        (fun i _ -> i < 4)
        (List.map
           (fun g -> ("random", g))
           (List.filter
              (fun g -> Dag.n_nodes g <= 12)
              (Lazy.force random_dags))))

let exact game ~r g =
  match game with
  | `Rbp -> opt_rbp_opt (Prbp.Rbp.config ~r ()) g
  | `Prbp -> opt_prbp_opt (Prbp.Prbp_game.config ~r ()) g

let bracket game ?budget ~r g =
  match game with
  | `Rbp -> Bracket.rbp ?budget ~r g
  | `Prbp -> Bracket.prbp ?budget ~r g

(* satellite (d): brackets contain the exact optimum on every DAG with
   n <= 12, for both games and several r *)
let test_contains_optimum () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun game ->
          List.iter
            (fun r ->
              let what =
                Printf.sprintf "%s %s r=%d" name
                  (match game with `Rbp -> "rbp" | `Prbp -> "prbp")
                  r
              in
              match (bracket game ~r g, exact game ~r g) with
              | Error _, None -> () (* both agree: no strategy at this r *)
              | Error e, Some _ ->
                  Alcotest.failf "%s: bracket failed but OPT exists: %s" what e
              | Ok _, None ->
                  Alcotest.failf "%s: bracket claims a strategy, OPT says none"
                    what
              | Ok b, Some opt ->
                  check_true
                    (Printf.sprintf "%s: %d <= %d <= %d" what
                       b.Bracket.lower.Lower.bound opt b.Bracket.upper)
                    (b.Bracket.lower.Lower.bound <= opt
                    && opt <= b.Bracket.upper))
            [ 2; 3; 4 ])
        [ `Rbp; `Prbp ])
    (Lazy.force small_graphs)

(* every embedded certificate re-validates through the independent
   checkers: Spart for partitions, the literal verifier for moves *)
let test_certificates_revalidate () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun game ->
          let r = 3 in
          match bracket game ~r g with
          | Error _ -> ()
          | Ok b ->
              (match b.Bracket.lower.Lower.witness with
              | Some seg -> check_ok (name ^ ": witness") (Segment.validate g seg)
              | None -> ());
              (match b.Bracket.profile with
              | Some seg -> check_ok (name ^ ": profile") (Segment.validate g seg)
              | None -> ());
              let replay =
                match b.Bracket.moves with
                | Bracket.Rbp_moves mv -> Prbp.Verifier.R.check ~r g mv
                | Bracket.Prbp_moves mv -> Prbp.Verifier.P.check ~r g mv
              in
              (match replay with
              | Ok c -> check_int (name ^ ": replay cost") b.Bracket.upper c
              | Error e -> Alcotest.failf "%s: replay rejected: %s" name e);
              check_true (name ^ ": game tag matches moves")
                (match (b.Bracket.game, b.Bracket.moves) with
                | Lower.Rbp, Bracket.Rbp_moves _
                | Lower.Prbp, Bracket.Prbp_moves _ ->
                    true
                | _ -> false))
        [ `Rbp; `Prbp ])
    (Lazy.force small_graphs)

let test_tight_bracket () =
  (* fan_in(5) at r = 6: load 5 sources + write the sink, and the
     trivial bound already equals it — the bracket must pin OPT *)
  let g = Prbp.Graphs.Basic.fan_in 5 in
  match Bracket.rbp ~r:6 g with
  | Error e -> Alcotest.failf "fan_in(5): %s" e
  | Ok b ->
      check_true "tight" b.Bracket.tight;
      check_int "pinned at 6" 6 b.Bracket.upper;
      check_int "OPT agrees" (opt_rbp (Prbp.Rbp.config ~r:6 ()) g)
        b.Bracket.upper

(* a starved budget must degrade the bracket, never break it: the base
   heuristics still produce a verified strategy and the lower portfolio
   falls back to the always-cheap rules *)
let test_starved_budget_stays_sound () =
  let budget =
    Prbp.Solver.Budget.v ~max_states:10 ~max_millis:1 ~check_every:1 ()
  in
  List.iter
    (fun (name, g) ->
      match Bracket.prbp ~budget ~r:3 g with
      | Error e -> Alcotest.failf "%s under starved budget: %s" name e
      | Ok b -> (
          match exact `Prbp ~r:3 g with
          | None -> Alcotest.failf "%s: OPT should exist at r=3" name
          | Some opt ->
              check_true (name ^ ": still contains OPT")
                (b.Bracket.lower.Lower.bound <= opt
                && opt <= b.Bracket.upper)))
    (Lazy.force small_graphs)

let test_deterministic_without_deadline () =
  (* no wall clock in the budget: two runs must agree on every field
     that is not elapsed time *)
  let key (b : Bracket.t) =
    ( b.Bracket.lower.Lower.bound,
      b.Bracket.lower.Lower.rule,
      b.Bracket.upper,
      Upper.meth_label b.Bracket.meth,
      b.Bracket.tight,
      Option.map Segment.n_classes b.Bracket.profile )
  in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun game ->
          match (bracket game ~r:3 g, bracket game ~r:3 g) with
          | Ok a, Ok b ->
              check_true (name ^ ": runs agree") (key a = key b)
          | Error _, Error _ -> ()
          | _ -> Alcotest.failf "%s: feasibility flipped between runs" name)
        [ `Rbp; `Prbp ])
    (Lazy.force small_graphs)

let test_json_row () =
  let g = Prbp.Graphs.Basic.diamond () in
  match Bracket.prbp ~r:2 g with
  | Error e -> Alcotest.failf "diamond: %s" e
  | Ok b ->
      let json =
        Prbp.Wire.encode_bracket (Prbp.Wire.bracket_of ~family:"diamond" b)
      in
      let contains needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i =
          i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
        in
        go 0
      in
      check_true "kind" (contains "\"kind\":\"bracket\"" json);
      check_true "family" (contains "\"family\":\"diamond\"" json);
      check_true "game" (contains "\"game\":\"prbp\"" json);
      check_true "upper"
        (contains (Printf.sprintf "\"upper\":%d" b.Bracket.upper) json);
      match Prbp.Wire.decode_bracket json with
      | Error e -> Alcotest.failf "decode_bracket: %s" e
      | Ok wb ->
          Alcotest.(check string)
            "bracket row round-trips byte-identically" json
            (Prbp.Wire.encode_bracket wb)

let gen_dag =
  QCheck.make
    ~print:(fun (seed, layers, width) ->
      Printf.sprintf "seed=%d layers=%d width=%d" seed layers width)
    QCheck.Gen.(triple (int_range 1 10_000) (int_range 2 3) (int_range 1 3))

let dag_of (seed, layers, width) =
  Prbp.Graphs.Random_dag.make ~seed ~layers ~width ~density:0.35
    ~max_in_degree:3 ()

let prop_contains game label =
  qcase ~count:25 (label ^ " brackets contain the exact optimum") gen_dag
    (fun params ->
      let g = dag_of params in
      let r = 3 in
      match bracket game ~r g with
      | Error _ -> exact game ~r g = None
      | Ok b -> (
          match exact game ~r g with
          | None -> false
          | Some opt ->
              b.Bracket.lower.Lower.bound <= opt && opt <= b.Bracket.upper))

let suite =
  [
    ( "bracket",
      [
        slow_case "contains OPT on all small DAGs" test_contains_optimum;
        case "certificates re-validate" test_certificates_revalidate;
        case "tight bracket pins OPT" test_tight_bracket;
        case "starved budget stays sound" test_starved_budget_stays_sound;
        case "deterministic without deadline" test_deterministic_without_deadline;
        case "json row" test_json_row;
        prop_contains `Rbp "RBP";
        prop_contains `Prbp "PRBP";
      ] );
  ]

open Test_util
module I2 = Prbp_solver.State_table.I2
module I3 = Prbp_solver.State_table.I3

(* Deterministic insert/lookup/update against sequential keys, enough
   volume to force several slot-array and dense-array growths. *)
let test_i2_grow () =
  let t = I2.create () in
  let n = 100_000 in
  for i = 0 to n - 1 do
    check_int "absent" (-1) (I2.find t i (i * 7));
    let idx = I2.add t i (i * 7) (i + 1) in
    check_int "dense index is insertion order" i idx
  done;
  check_int "length" n (I2.length t);
  for i = 0 to n - 1 do
    let idx = I2.find t i (i * 7) in
    check_int "found" i idx;
    check_int "value" (i + 1) (I2.value t idx);
    check_int "key1" i (I2.key1 t idx);
    check_int "key2" (i * 7) (I2.key2 t idx)
  done;
  I2.set_value t 0 42;
  check_int "set_value" 42 (I2.value t 0);
  I2.reset t;
  check_int "reset empties" 0 (I2.length t);
  check_int "reset forgets" (-1) (I2.find t 3 21)

(* Adversarial collisions: keys differing only in high bits, and
   bitmask-shaped keys (the solver's actual distribution). *)
let test_i3_collisions () =
  let t = I3.create () in
  let keys =
    List.concat_map
      (fun a ->
        List.concat_map
          (fun b -> List.map (fun c -> (a lsl 40, b lsl 20, c)) [ 0; 1; 2; 3 ])
          [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  List.iteri
    (fun i (a, b, c) ->
      check_int "absent" (-1) (I3.find t a b c);
      check_int "idx" i (I3.add t a b c i))
    keys;
  List.iteri
    (fun i (a, b, c) ->
      let idx = I3.find t a b c in
      check_int "found" i idx;
      check_int "value" i (I3.value t idx);
      check_true "keys back"
        (I3.key1 t idx = a && I3.key2 t idx = b && I3.key3 t idx = c))
    keys

(* qcheck: an arbitrary op sequence agrees with a Hashtbl model. *)
let qtest_i2_vs_hashtbl =
  QCheck.Test.make ~count:200 ~name:"I2 agrees with a Hashtbl model"
    QCheck.(list (triple small_signed_int small_signed_int small_nat))
    (fun ops ->
      let t = I2.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (a, b, v) ->
          let idx = I2.find t a b in
          if idx >= 0 then I2.set_value t idx v
          else ignore (I2.add t a b v);
          Hashtbl.replace model (a, b) v)
        ops;
      Hashtbl.length model = I2.length t
      && Hashtbl.fold
           (fun (a, b) v acc ->
             acc
             &&
             let idx = I2.find t a b in
             idx >= 0 && I2.value t idx = v && I2.key1 t idx = a
             && I2.key2 t idx = b)
           model true)

let qtest_i3_vs_hashtbl =
  QCheck.Test.make ~count:200 ~name:"I3 agrees with a Hashtbl model"
    QCheck.(
      list (pair small_signed_int (pair small_signed_int small_signed_int)))
    (fun ops ->
      let t = I3.create () in
      let model = Hashtbl.create 16 in
      List.iteri
        (fun v (a, (b, c)) ->
          let idx = I3.find t a b c in
          if idx >= 0 then I3.set_value t idx v
          else ignore (I3.add t a b c v);
          Hashtbl.replace model (a, b, c) v)
        ops;
      Hashtbl.length model = I3.length t
      && Hashtbl.fold
           (fun (a, b, c) v acc ->
             acc
             &&
             let idx = I3.find t a b c in
             idx >= 0 && I3.value t idx = v)
           model true)

(* The solvers' bit kernels, exercised over every single-bit input and
   random masks. *)
let test_bits () =
  let module B = Prbp_solver.Bits in
  for i = 0 to 62 do
    check_int "lowest_set_index on 2^i" i (B.lowest_set_index (1 lsl i));
    check_int "popcount of 2^i" 1 (B.popcount (1 lsl i))
  done;
  check_int "popcount 0" 0 (B.popcount 0);
  check_int "popcount max_int" 62 (B.popcount max_int);
  let st = Random.State.make [| 42 |] in
  for _ = 1 to 1000 do
    let m = Random.State.int st ((1 lsl 30) - 1) in
    let naive =
      let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
      go 0 m
    in
    check_int "popcount random" naive (B.popcount m);
    let collected = ref [] in
    B.iter_bits (fun i -> collected := i :: !collected) m;
    let expect =
      List.filter (fun i -> m land (1 lsl i) <> 0) (List.init 30 Fun.id)
    in
    Alcotest.(check (list int)) "iter_bits" expect (List.rev !collected)
  done

let suite =
  [
    ( "state_table",
      [
        case "I2 insert/lookup/grow/reset" test_i2_grow;
        case "I3 adversarial collisions" test_i3_collisions;
        QCheck_alcotest.to_alcotest qtest_i2_vs_hashtbl;
        QCheck_alcotest.to_alcotest qtest_i3_vs_hashtbl;
        case "bit kernels" test_bits;
      ] );
  ]

(* Cross-module scenarios: generator -> strategy/solver -> simulator ->
   partition extraction -> checker, end to end. *)
open Test_util
module Dag = Prbp.Dag
module G = Prbp.Graphs

let test_full_pipeline_fig1 () =
  (* the complete Proposition 4.2 story in one flow *)
  let g, ids = G.Fig1.full () in
  let r = 4 in
  (* exact optima *)
  let opt_rbp = Test_util.opt_rbp (Prbp.Rbp.config ~r ()) g in
  let opt_prbp = Test_util.opt_prbp (Prbp.Prbp_game.config ~r ()) g in
  check_int "OPT_RBP" 3 opt_rbp;
  check_int "OPT_PRBP" 2 opt_prbp;
  (* the A.1 strategies realize them *)
  check_int "A.1 realizes RBP" opt_rbp (rbp_cost ~r g (Prbp.Strategies.fig1_rbp ids));
  check_int "A.1 realizes PRBP" opt_prbp
    (prbp_cost ~r g (Prbp.Strategies.fig1_prbp ids));
  (* the RBP strategy translates to PRBP at equal cost (Prop 4.1) *)
  let translated = Prbp.Move.rbp_to_prbp g (Prbp.Strategies.fig1_rbp ids) in
  check_int "translation" opt_rbp (prbp_cost ~r g translated);
  (* both PRBP lower-bound extractions hold on the optimal trace *)
  let moves = Prbp.Strategies.fig1_prbp ids in
  let e = Prbp.Extract.edge_partition_of_prbp ~r g moves in
  check_ok "edge partition" (Prbp.Spart.is_edge_partition g ~s:(2 * r) e);
  let d = Prbp.Extract.dominator_partition_of_prbp ~r g moves in
  check_ok "dominator partition"
    (Prbp.Spart.is_dominator_partition g ~s:(2 * r) d)

let test_exact_solver_strategies_replay () =
  (* optimal strategies reconstructed by the solvers replay to their
     reported cost on several families *)
  let graphs =
    [
      Prbp.Graphs.Basic.diamond ();
      Prbp.Graphs.Basic.pyramid 2;
      fst (G.Fig1.full ());
      (G.Tree.make ~k:2 ~depth:2).G.Tree.dag;
    ]
  in
  List.iter
    (fun g ->
      let r = Dag.max_in_degree g + 1 in
      (match Test_util.rbp_strategy (Prbp.Rbp.config ~r ()) g with
      | Some (c, mv) -> check_int "rbp replay" c (rbp_cost ~r g mv)
      | None -> Alcotest.fail "rbp unsolvable");
      match Test_util.prbp_strategy (Prbp.Prbp_game.config ~r ()) g with
      | Some (c, mv) -> check_int "prbp replay" c (prbp_cost ~r g mv)
      | None -> Alcotest.fail "prbp unsolvable")
    graphs

let test_matvec_story () =
  (* Proposition 4.3 end to end for m = 3 *)
  let m = 3 in
  let mv = G.Matvec.make ~m in
  let g = mv.G.Matvec.dag in
  let r = m + 3 in
  let prbp = prbp_cost ~r g (Prbp.Strategies.matvec_prbp mv) in
  check_int "PRBP trivial" (Dag.trivial_cost g) prbp;
  (* any RBP strategy pays at least m² + 3m − 1: the heuristic is an
     upper bound oracle, so it must sit above the bound too *)
  let rbp = Prbp.Heuristic.rbp_cost ~r g in
  check_true "RBP above its bound" (rbp >= G.Matvec.rbp_lower ~m);
  check_true "strict separation" (prbp < rbp)

let test_dot_export () =
  let g, _ = G.Fig1.full () in
  let dot = Prbp.Dot.to_string g in
  check_true "digraph" (String.length dot > 20);
  check_true "mentions nodes"
    (let rec contains i =
       i + 4 <= String.length dot
       && (String.sub dot i 4 = "n0 -" || contains (i + 1))
     in
     contains 0)

let test_fft_bound_vs_strategy_sweep () =
  (* Theorem 6.9 shape: measured / bound stays within a constant across
     the sweep *)
  List.iter
    (fun m ->
      let f = G.Fft.make ~m in
      let r = 6 in
      let cost = rbp_cost ~r f.G.Fft.dag (Prbp.Strategies.fft_blocked ~r f) in
      let bound = G.Fft.lower_bound f ~r in
      let ratio = float_of_int cost /. bound in
      check_true "ratio bounded" (ratio >= 1. && ratio < 24.))
    [ 8; 16; 32; 64 ]

let test_heuristics_against_exact_on_pool () =
  List.iter
    (fun g ->
      let r = max 2 (Dag.max_in_degree g + 1) in
      if Dag.n_nodes g <= 12 && Dag.n_edges g <= 40 then begin
        let he = Prbp.Heuristic.prbp_cost ~r g in
        match tolerant (Prbp.Exact_prbp.solve (Prbp.Prbp_game.config ~r ()) g) with
        | Some (Some ex) ->
            check_true "heuristic sandwich" (ex <= he);
            check_true "trivial sandwich" (Dag.trivial_cost g <= ex)
        | _ -> ()
      end)
    (Lazy.force random_dags)

let test_collect_capped_vs_bound_sweep () =
  (* Proposition 4.6: sweep d and len; the capped strategy always lands
     between the bound and 6x the bound *)
  List.iter
    (fun (d, len) ->
      let c = G.Collect.make ~d ~len in
      let cost = prbp_cost ~r:(d + 1) c.G.Collect.dag (Prbp.Strategies.collect_capped c) in
      let lb = G.Collect.lower_bound_capped c in
      check_true "cost within [lb, 8*lb + 2d]"
        (cost >= lb && cost <= (8 * lb) + (2 * d)))
    [ (2, 20); (3, 30); (4, 50); (6, 90) ]

let suite =
  [
    ( "integration",
      [
        case "fig1 full pipeline" test_full_pipeline_fig1;
        case "solver strategies replay" test_exact_solver_strategies_replay;
        case "Prop 4.3 matvec story" test_matvec_story;
        case "DOT export" test_dot_export;
        case "Thm 6.9 sweep shape" test_fft_bound_vs_strategy_sweep;
        case "heuristic/exact/trivial sandwich" test_heuristics_against_exact_on_pool;
        case "Prop 4.6 sweep" test_collect_capped_vs_bound_sweep;
      ] );
  ]

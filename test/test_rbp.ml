open Test_util
module Dag = Prbp.Dag
module Rbp = Prbp.Rbp
module R = Prbp.Move.R

let diamond () = Prbp.Graphs.Basic.diamond ()

let cfg r = Rbp.config ~r ()

let test_initial_state () =
  let t = Rbp.start (cfg 3) (diamond ()) in
  check_true "source blue" (Rbp.has_blue t 0);
  check_false "sink not blue" (Rbp.has_blue t 3);
  check_int "no reds" 0 (Rbp.red_count t);
  check_false "not terminal" (Rbp.is_terminal t);
  check_int "no cost" 0 (Rbp.io_cost t)

let test_load_requires_blue () =
  let t = Rbp.start (cfg 3) (diamond ()) in
  check_err "load non-blue" (Rbp.apply t (R.Load 1));
  check_ok "load source" (Rbp.apply t (R.Load 0))

let test_compute_rules () =
  let g = diamond () in
  let t = Rbp.start (cfg 3) g in
  check_err "inputs not red" (Rbp.apply t (R.Compute 1));
  check_err "source not computable" (Rbp.apply t (R.Compute 0));
  check_ok "load" (Rbp.apply t (R.Load 0));
  check_ok "compute 1" (Rbp.apply t (R.Compute 1));
  check_true "computed" (Rbp.is_computed t 1);
  check_err "one-shot" (Rbp.apply t (R.Compute 1))

let test_capacity () =
  let g = Prbp.Graphs.Basic.fan_in 3 in
  let t = Rbp.start (cfg 2) g in
  check_ok "load 0" (Rbp.apply t (R.Load 0));
  check_ok "load 1" (Rbp.apply t (R.Load 1));
  check_err "fast memory full" (Rbp.apply t (R.Load 2));
  check_ok "delete" (Rbp.apply t (R.Delete 0));
  check_ok "now fits" (Rbp.apply t (R.Load 2))

let test_compute_needs_free_pebble () =
  let g = diamond () in
  let t = Rbp.start (cfg 1) g in
  check_ok "load 0" (Rbp.apply t (R.Load 0));
  check_err "no pebble free for result" (Rbp.apply t (R.Compute 1))

let test_save_delete () =
  let g = diamond () in
  let t = Rbp.start (cfg 4) g in
  check_err "save needs red" (Rbp.apply t (R.Save 1));
  check_ok "load" (Rbp.apply t (R.Load 0));
  check_ok "compute" (Rbp.apply t (R.Compute 1));
  check_ok "save" (Rbp.apply t (R.Save 1));
  check_true "blue now" (Rbp.has_blue t 1);
  check_true "still red" (Rbp.has_red t 1);
  check_ok "delete" (Rbp.apply t (R.Delete 1));
  check_false "red gone" (Rbp.has_red t 1);
  check_err "delete again" (Rbp.apply t (R.Delete 1))

let test_full_pebbling_diamond () =
  let g = diamond () in
  let moves =
    R.[ Load 0; Compute 1; Compute 2; Delete 0; Compute 3; Save 3 ]
  in
  check_int "cost 2" 2 (rbp_cost ~r:3 g moves);
  (* with r = 4 no delete needed *)
  let moves4 = R.[ Load 0; Compute 1; Compute 2; Compute 3; Save 3 ] in
  check_int "cost 2 at r=4" 2 (rbp_cost ~r:4 g moves4)

let test_incomplete_rejected () =
  let g = diamond () in
  check_err "no save of sink"
    (Rbp.check (cfg 4) g R.[ Load 0; Compute 1; Compute 2; Compute 3 ])

let test_wasteful_moves_legal () =
  (* the paper's rules allow loading an already-red node or saving an
     already-blue one; both burn cost without changing state *)
  let g = diamond () in
  let t = Rbp.start (cfg 4) g in
  check_ok "load" (Rbp.apply t (R.Load 0));
  check_ok "wasteful load" (Rbp.apply t (R.Load 0));
  check_ok "wasteful save" (Rbp.apply t (R.Save 0));
  check_int "costs accrued" 3 (Rbp.io_cost t);
  check_int "still one red" 1 (Rbp.red_count t)

let test_normalize () =
  let g = diamond () in
  let wasteful =
    R.[ Load 0; Load 0; Save 0; Compute 1; Compute 2; Delete 0; Compute 3; Save 3 ]
  in
  let clean = Rbp.normalize (cfg 4) g wasteful in
  check_int "normalized cost" 2 (rbp_cost ~r:4 g clean);
  check_int "moves dropped" (List.length wasteful - 2) (List.length clean)

let test_max_red_seen () =
  let g = diamond () in
  let t =
    Rbp.run_exn (cfg 4) g R.[ Load 0; Compute 1; Compute 2; Compute 3; Save 3 ]
  in
  check_int "peak" 4 (Rbp.max_red_seen t);
  check_true "terminal" (Rbp.is_terminal t)

let test_error_message_pinpoints_move () =
  let g = diamond () in
  match Rbp.run (cfg 4) g R.[ Load 0; Compute 3 ] with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e ->
      check_true "mentions move index" (String.length e > 0 && e.[0] = 'm')

let test_run_counts () =
  let g = diamond () in
  let t =
    Rbp.run_exn (cfg 4) g R.[ Load 0; Compute 1; Compute 2; Compute 3; Save 3 ]
  in
  check_int "loads" 1 (Rbp.loads t);
  check_int "saves" 1 (Rbp.saves t);
  check_int "computes" 3 (Rbp.computes t);
  check_int "io" 2 (Rbp.io_cost t)

let test_compute_cost_accounting () =
  let g = diamond () in
  let cfg = Rbp.config ~r:4 ~compute_cost:0.5 () in
  let t =
    Rbp.run_exn cfg g R.[ Load 0; Compute 1; Compute 2; Compute 3; Save 3 ]
  in
  Alcotest.(check (float 1e-9)) "total" 3.5 (Rbp.total_cost t)

let test_trivial_cost_is_lower_bound () =
  (* every complete pebbling pays at least trivial cost (here checked
     on the optimal solver result across a family) *)
  List.iter
    (fun g ->
      let r = Dag.max_in_degree g + 1 in
      let c = Test_util.opt_rbp (cfg (max r 2)) g in
      check_true "c >= trivial" (c >= Dag.trivial_cost g))
    [ diamond (); Prbp.Graphs.Basic.path 4; Prbp.Graphs.Basic.pyramid 2 ]

let suite =
  [
    ( "rbp",
      [
        case "initial state" test_initial_state;
        case "load requires blue" test_load_requires_blue;
        case "compute rules + one-shot" test_compute_rules;
        case "capacity limit" test_capacity;
        case "compute needs a free pebble" test_compute_needs_free_pebble;
        case "save/delete" test_save_delete;
        case "full pebbling of diamond" test_full_pebbling_diamond;
        case "incomplete pebbling rejected" test_incomplete_rejected;
        case "wasteful moves stay legal" test_wasteful_moves_legal;
        case "normalize drops waste" test_normalize;
        case "red high-water mark" test_max_red_seen;
        case "errors pinpoint the move" test_error_message_pinpoints_move;
        case "operation counters" test_run_counts;
        case "compute-cost accounting (B.3)" test_compute_cost_accounting;
        case "trivial cost lower-bounds optimum" test_trivial_cost_is_lower_bound;
      ] );
  ]

let () =
  Alcotest.run "prbp"
    (Test_bitset.suite @ Test_dag.suite @ Test_topo.suite @ Test_flow.suite
   @ Test_dominator.suite @ Test_graphs.suite @ Test_rbp.suite
   @ Test_prbp.suite @ Test_variants.suite @ Test_exact.suite
   @ Test_heuristic.suite @ Test_strategies.suite @ Test_partition.suite
   @ Test_extract.suite @ Test_hardness.suite @ Test_levels.suite
   @ Test_harness.suite @ Test_integration.suite @ Test_props.suite
   @ Test_minpart.suite @ Test_recompute.suite @ Test_extensions.suite
   @ Test_trace_serialize.suite @ Test_verifier.suite @ Test_black.suite
   @ Test_multi.suite @ Test_misc.suite @ Test_state_table.suite
   @ Test_deque01.suite @ Test_engine.suite @ Test_anytime.suite
   @ Test_segment.suite @ Test_bracket.suite @ Test_rules.suite
   @ Test_obs.suite @ Test_parallel.suite @ Test_wire.suite
   @ Test_serve.suite @ Test_frontier.suite)

open Test_util
module D = Prbp_solver.Deque01

let drain d =
  let rec go acc =
    match D.pop_front d with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []

let test_fifo () =
  let d = D.create () in
  check_true "fresh empty" (D.is_empty d);
  for i = 1 to 100 do
    D.push_back d i
  done;
  check_int "length" 100 (D.length d);
  Alcotest.(check (list int)) "FIFO order" (List.init 100 (fun i -> i + 1))
    (drain d);
  check_true "drained" (D.is_empty d)

let test_lifo () =
  let d = D.create () in
  for i = 1 to 100 do
    D.push_front d i
  done;
  Alcotest.(check (list int)) "LIFO order"
    (List.rev (List.init 100 (fun i -> i + 1)))
    (drain d)

(* interleave pushes and pops so head wraps around the buffer in both
   directions across several growth steps *)
let test_wraparound () =
  let d = D.create () in
  let model = Queue.create () in
  for round = 0 to 5 do
    for i = 0 to (16 lsl round) - 1 do
      D.push_back d i;
      Queue.push i model
    done;
    for _ = 1 to 8 lsl round do
      check_int "pop matches" (Queue.pop model)
        (match D.pop_front d with Some x -> x | None -> -1)
    done
  done;
  check_int "lengths agree" (Queue.length model) (D.length d)

let test_clear () =
  let d = D.create () in
  for i = 1 to 50 do
    D.push_back d i
  done;
  D.clear d;
  check_true "cleared" (D.is_empty d);
  check_true "pop on empty" (D.pop_front d = None);
  D.push_front d 7;
  Alcotest.(check (list int)) "usable after clear" [ 7 ] (drain d)

(* qcheck: arbitrary op sequences agree with a two-list reference *)
type op = Front of int | Back of int | Pop

let qtest_vs_model =
  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (2, map (fun x -> Front x) small_int);
          (2, map (fun x -> Back x) small_int);
          (3, return Pop);
        ])
  in
  let print_op = function
    | Front x -> Printf.sprintf "F%d" x
    | Back x -> Printf.sprintf "B%d" x
    | Pop -> "P"
  in
  QCheck.Test.make ~count:500 ~name:"deque agrees with a list model"
    (QCheck.make ~print:QCheck.Print.(list print_op) (QCheck.Gen.list gen_op))
    (fun ops ->
      let d = D.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Front x ->
              D.push_front d x;
              model := x :: !model;
              true
          | Back x ->
              D.push_back d x;
              model := !model @ [ x ];
              true
          | Pop -> (
              match (D.pop_front d, !model) with
              | None, [] -> true
              | Some x, y :: rest when x = y ->
                  model := rest;
                  true
              | _ -> false))
        ops
      && D.length d = List.length !model)

let suite =
  [
    ( "deque01",
      [
        case "FIFO via push_back" test_fifo;
        case "LIFO via push_front" test_lifo;
        case "wraparound across growth" test_wraparound;
        case "clear releases and stays usable" test_clear;
        QCheck_alcotest.to_alcotest qtest_vs_model;
      ] );
  ]

(* Regression suite for the generic GAME/Engine refactor.

   The golden optimal costs below were captured with the pre-refactor,
   per-game solvers (each then carried its own table/deque/BFS loop);
   the rewritten instances of the one generic engine must reproduce
   every value bit-for-bit.  On top of that, the multiprocessor
   instances at p = 1 must coincide with the single-processor solvers
   on random DAGs — the Section-8.1 games specialize exactly to the
   Section-1/3 games. *)

open Test_util
module Dag = Prbp.Dag

let rcfg r = Prbp.Rbp.config ~r ()

let pcfg r = Prbp.Prbp_game.config ~r ()

let mcfg ~p ~r = Prbp.Multi.config ~p ~r ()

(* name, dag (lazy: some constructors are not available at module init
   order), r, golden OPT_RBP (None = infeasible), golden OPT_PRBP *)
let golden_cases :
    (string * (unit -> Dag.t) * int * int option * int option) list =
  [
    ("fig1 r=4", (fun () -> fst (Prbp.Graphs.Fig1.full ())), 4, Some 3, Some 2);
    ( "chained2 r=4",
      (fun () -> Prbp.Graphs.Fig1.chained ~copies:2),
      4,
      Some 5,
      Some 2 );
    ( "tree23 r=3",
      (fun () -> (Prbp.Graphs.Tree.make ~k:2 ~depth:3).Prbp.Graphs.Tree.dag),
      3,
      Some 15,
      Some 11 );
    ( "zipper33 r=5",
      (fun () ->
        (Prbp.Graphs.Zipper.make ~d:3 ~len:3).Prbp.Graphs.Zipper.dag),
      5,
      Some 10,
      Some 7 );
    ( "lemma54g1 r=3",
      (fun () ->
        (Prbp.Graphs.Lemma54.make ~group_size:1).Prbp.Graphs.Lemma54.dag),
      3,
      None,
      Some 8 );
    ( "rand1 r=4",
      (fun () -> Prbp.Graphs.Random_dag.make ~seed:1 ~layers:3 ~width:3 ()),
      4,
      Some 7,
      Some 6 );
    ( "rand2 r=4",
      (fun () ->
        Prbp.Graphs.Random_dag.make ~seed:2 ~layers:4 ~width:2 ~density:0.5
          ()),
      4,
      None,
      Some 6 );
    ( "rand7 r=3",
      (fun () -> Prbp.Graphs.Random_dag.make ~seed:7 ~layers:3 ~width:3 ()),
      3,
      None,
      Some 9 );
    ("diamond r=2", (fun () -> Prbp.Graphs.Basic.diamond ()), 2, None, Some 4);
    ("pyramid3 r=4", (fun () -> Prbp.Graphs.Basic.pyramid 3), 4, Some 7, Some 5);
  ]

(* name, dag, golden black pebbling number, golden with sliding *)
let golden_black : (string * (unit -> Dag.t) * int * int) list =
  [
    ("fig1", (fun () -> fst (Prbp.Graphs.Fig1.full ())), 4, 3);
    ("chained2", (fun () -> Prbp.Graphs.Fig1.chained ~copies:2), 4, 3);
    ( "tree23",
      (fun () -> (Prbp.Graphs.Tree.make ~k:2 ~depth:3).Prbp.Graphs.Tree.dag),
      5,
      4 );
    ( "zipper33",
      (fun () ->
        (Prbp.Graphs.Zipper.make ~d:3 ~len:3).Prbp.Graphs.Zipper.dag),
      5,
      4 );
    ( "lemma54g1",
      (fun () ->
        (Prbp.Graphs.Lemma54.make ~group_size:1).Prbp.Graphs.Lemma54.dag),
      8,
      7 );
    ( "rand1",
      (fun () -> Prbp.Graphs.Random_dag.make ~seed:1 ~layers:3 ~width:3 ()),
      4,
      3 );
    ( "rand2",
      (fun () ->
        Prbp.Graphs.Random_dag.make ~seed:2 ~layers:4 ~width:2 ~density:0.5
          ()),
      5,
      4 );
    ("diamond", (fun () -> Prbp.Graphs.Basic.diamond ()), 3, 2);
    ("pyramid3", (fun () -> Prbp.Graphs.Basic.pyramid 3), 5, 4);
  ]

let test_golden_rbp_prbp () =
  List.iter
    (fun (name, dag, r, rbp, prbp) ->
      let g = dag () in
      (match rbp with
      | Some c ->
          check_int (name ^ " RBP") c (Test_util.opt_rbp (rcfg r) g)
      | None ->
          check_true (name ^ " RBP infeasible")
            (Test_util.opt_rbp_opt (rcfg r) g = None));
      match prbp with
      | Some c ->
          check_int (name ^ " PRBP") c (Test_util.opt_prbp (pcfg r) g)
      | None ->
          check_true (name ^ " PRBP infeasible")
            (Test_util.opt_prbp_opt (pcfg r) g = None))
    golden_cases

let test_golden_black () =
  List.iter
    (fun (name, dag, plain, slide) ->
      let g = dag () in
      check_int (name ^ " black") plain (Prbp.Black.number g);
      check_int (name ^ " black sliding") slide
        (Prbp.Black.number ~sliding:true g))
    golden_black

let test_no_prune_agrees () =
  (* branch-and-bound is an optimization, never a semantic change *)
  List.iter
    (fun (name, dag, r, rbp, prbp) ->
      let g = dag () in
      check_true (name ^ " RBP no-prune")
        (Test_util.opt_rbp_opt ~prune:false (rcfg r) g = rbp);
      check_true (name ^ " PRBP no-prune")
        (Test_util.opt_prbp_opt ~prune:false (pcfg r) g = prbp))
    [ List.nth golden_cases 0; List.nth golden_cases 8 ]

let test_multi_p1_goldens () =
  (* the p = 1 multiprocessor games on the same golden instances *)
  List.iter
    (fun (name, dag, r, rbp, prbp) ->
      let g = dag () in
      check_true
        (name ^ " RBP-MC p=1")
        (Test_util.mrbp_opt_opt (mcfg ~p:1 ~r) g = rbp);
      check_true
        (name ^ " PRBP-MC p=1")
        (Test_util.mprbp_opt_opt (mcfg ~p:1 ~r) g = prbp))
    golden_cases

let test_multi_p2_sandwich () =
  (* p = 2 with capacity r is at least as good as p = 1 with r, and no
     better than p = 1 with capacity 2r (the single cache can simulate
     both halves without any cross-processor traffic) *)
  let g, _ = Prbp.Graphs.Fig1.full () in
  let r = 3 in
  let p1 = Test_util.mprbp_opt (mcfg ~p:1 ~r) g in
  let p2 = Test_util.mprbp_opt (mcfg ~p:2 ~r) g in
  let fat = Test_util.opt_prbp (pcfg (2 * r)) g in
  check_true "p=2 <= p=1" (p2 <= p1);
  check_true "OPT(2r) <= p=2" (fat <= p2)

let test_multi_strategy_replays () =
  let g, _ = Prbp.Graphs.Fig1.full () in
  let cfg = mcfg ~p:2 ~r:3 in
  (match Test_util.mrbp_strategy cfg g with
  | Some (c, moves) -> (
      match Prbp.Multi.R.check cfg g moves with
      | Ok c' -> check_int "rbp-mc strategy cost" c c'
      | Error e -> Alcotest.failf "rbp-mc strategy invalid: %s" e)
  | None -> Alcotest.fail "rbp-mc: no strategy found");
  match Test_util.mprbp_strategy cfg g with
  | Some (c, moves) -> (
      match Prbp.Multi.P.check cfg g moves with
      | Ok c' -> check_int "prbp-mc strategy cost" c c'
      | Error e -> Alcotest.failf "prbp-mc strategy invalid: %s" e)
  | None -> Alcotest.fail "prbp-mc: no strategy found"

let test_multi_rejects_bad_cfg () =
  let g = Prbp.Graphs.Basic.diamond () in
  check_true "one-shot only"
    (try
       ignore
         (Test_util.mrbp_opt_opt
            { (mcfg ~p:2 ~r:3) with Prbp.Multi.one_shot = false }
            g);
       false
     with Invalid_argument _ -> true)

let test_thresholds_generic () =
  (* the generic probe under a non-default oracle: multiprocessor
     thresholds are never above the single-processor ones *)
  let g = Prbp.Graphs.Basic.pyramid 3 in
  let single = Prbp.Thresholds.rbp_trivial_r g in
  let multi = Prbp.Thresholds.multi_rbp_trivial_r ~p:2 g in
  check_true "multi r* <= single r*"
    (match (single, multi) with
    | Some s, Some m -> m <= s
    | _ -> false);
  check_true "p=1 r* = single r*"
    (Prbp.Thresholds.multi_rbp_trivial_r ~p:1 g = single);
  check_true "prbp p=1 r* = single r*"
    (Prbp.Thresholds.multi_prbp_trivial_r ~p:1 g
    = Prbp.Thresholds.prbp_trivial_r g)

let test_bounded_unified () =
  (* every game instance reports a blown state budget the same way: a
     Bounded outcome with a sound, non-trivial certified interval *)
  let g = Prbp.Graphs.Basic.pyramid 4 in
  let budget = S.Budget.states 5 in
  let bounded ?(min_lower = 1) what outcome =
    match outcome with
    | S.Bounded b ->
        check_true (what ^ " stopped on max-states")
          (b.S.stopped = S.Max_states);
        check_true (what ^ " lower sound") (b.S.lower >= min_lower);
        check_true (what ^ " lower <= upper")
          (match b.S.upper with Some u -> b.S.lower <= u | None -> true)
    | S.Optimal _ | S.Unsolvable _ ->
        Alcotest.failf "%s: expected Bounded under a 5-state budget" what
  in
  bounded "rbp" (Prbp.Exact_rbp.solve ~budget (rcfg 5) g);
  bounded "prbp" (Prbp.Exact_prbp.solve ~budget (pcfg 5) g);
  bounded "multi" (Prbp.Exact_multi.rbp_solve ~budget (mcfg ~p:2 ~r:5) g);
  (* every black move is free, so its certified interval sits at 0 *)
  bounded ~min_lower:0 "black" (Prbp.Black.solve ~budget ~s:8 g);
  (* the deprecated wrappers still translate Bounded into the historic
     engine-wide exception, catchable under any alias *)
  check_true "black number still raises Game.Too_large"
    (try
       ignore (Prbp.Black.number ~max_states:5 g);
       false
     with Prbp.Game.Too_large _ -> true)

(* Property: on random DAGs, the p = 1 multiprocessor optima equal the
   single-processor optima (including joint infeasibility). *)
let qcheck_multi_p1 =
  let pool = lazy (Array.of_list (Lazy.force random_dags)) in
  qcase ~count:20 "Exact_multi p=1 = single-processor"
    QCheck.(pair (int_bound 9) (int_range 2 4))
    (fun (i, r) ->
      let g = (Lazy.force pool).(i) in
      let cfg = mcfg ~p:1 ~r in
      (* an unlucky draw can blow the state budget on either side of
         the comparison — that instance proves nothing, skip it *)
      match
        ( tolerant (Prbp.Exact_multi.rbp_solve cfg g),
          tolerant (Prbp.Exact_rbp.solve (rcfg r) g),
          tolerant (Prbp.Exact_multi.prbp_solve cfg g),
          tolerant (Prbp.Exact_prbp.solve (pcfg r) g) )
      with
      | Some mr, Some sr, Some mp, Some sp -> mr = sr && mp = sp
      | _ -> true)

let suite =
  [
    ( "engine",
      [
        case "golden rbp/prbp optima" test_golden_rbp_prbp;
        case "golden black pebbling numbers" test_golden_black;
        case "pruning never changes the optimum" test_no_prune_agrees;
        slow_case "multi p=1 on golden instances" test_multi_p1_goldens;
        case "multi p=2 sandwich bounds" test_multi_p2_sandwich;
        case "multi strategies replay" test_multi_strategy_replays;
        case "multi rejects non-one-shot configs" test_multi_rejects_bad_cfg;
        case "generic threshold probe" test_thresholds_generic;
        case "unified Bounded outcomes" test_bounded_unified;
        qcheck_multi_p1;
      ] );
  ]

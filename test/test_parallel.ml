(* The multicore engine (Engine.Make at jobs >= 2): jobs-equivalence
   of optima, determinism of truncated-run certificates across domain
   counts, the sharded state table under real contention, the
   file-backed spill tier, the prune auto-off switch, and the
   harness-level jobs composition. *)

open Test_util
module Sharded = Prbp_solver.State_table.Sharded
module Clock = Prbp.Obs.Clock

let rcfg r = Prbp.Rbp.config ~r ()

let pcfg r = Prbp.Prbp_game.config ~r ()

let fig1 () = fst (Prbp.Graphs.Fig1.full ())

(* --- jobs-equivalence ---------------------------------------------- *)

(* The optimum (and unsolvability) cannot depend on the domain count. *)
let qcheck_jobs_equiv_rbp =
  qcase ~count:25 "RBP: solve ~jobs:k agrees with ~jobs:1 (k = 2, 4)"
    QCheck.(
      triple (int_range 1 500) (int_range 2 4) (int_range 2 3))
    (fun (seed, layers, width) ->
      let g =
        Prbp.Graphs.Random_dag.make ~seed ~max_in_degree:3 ~layers ~width ()
      in
      let r = max 2 (min 4 (Prbp.Dag.max_in_degree g + 1)) in
      let solve jobs = Prbp.Exact_rbp.solve ~jobs (rcfg r) g in
      let reference = S.interval (solve 1) in
      List.for_all (fun k -> S.interval (solve k) = reference) [ 2; 4 ])

let qcheck_jobs_equiv_prbp =
  qcase ~count:10 "PRBP: solve ~jobs:k agrees with ~jobs:1 (k = 2, 4)"
    QCheck.(pair (int_range 1 200) (int_range 2 3))
    (fun (seed, layers) ->
      let g =
        Prbp.Graphs.Random_dag.make ~seed ~max_in_degree:3 ~layers ~width:2 ()
      in
      let r = max 2 (min 4 (Prbp.Dag.max_in_degree g + 1)) in
      let solve jobs = Prbp.Exact_prbp.solve ~jobs (pcfg r) g in
      let reference = S.interval (solve 1) in
      List.for_all (fun k -> S.interval (solve k) = reference) [ 2; 4 ])

(* jobs above the shard count clamp rather than misbehave. *)
let jobs_clamp () =
  let g = fig1 () in
  check_int "jobs=64 clamps to the shard count" 3
    (cost_exn "rbp" (Prbp.Exact_rbp.solve ~jobs:64 (rcfg 4) g));
  check_int "jobs=0 falls back to sequential" 3
    (cost_exn "rbp" (Prbp.Exact_rbp.solve ~jobs:0 (rcfg 4) g))

(* --- truncated-run determinism ------------------------------------- *)

(* A state-count stop is decided at the barrier, so the certified
   interval AND the aggregate counters must be identical for every
   domain count among parallel runs. *)
let bounded_deterministic () =
  let g =
    Prbp.Graphs.Random_dag.make ~seed:11 ~max_in_degree:3 ~layers:4 ~width:4
      ()
  in
  let budget = S.Budget.v ~max_states:3_000 () in
  let solve jobs = Prbp.Exact_prbp.solve ~budget ~jobs (pcfg 3) g in
  match (solve 2, solve 4) with
  | S.Bounded b2, S.Bounded b4 ->
      check_int "lower" b2.S.lower b4.S.lower;
      check_true "upper" (b2.S.upper = b4.S.upper);
      check_true "reason" (b2.S.stopped = b4.S.stopped);
      check_int "explored" b2.S.stats.S.explored b4.S.stats.S.explored;
      check_int "expansions" b2.S.stats.S.expansions b4.S.stats.S.expansions;
      check_int "pruned" b2.S.stats.S.pruned b4.S.stats.S.pruned;
      check_int "frontier" b2.S.stats.S.frontier b4.S.stats.S.frontier;
      (* internal consistency of the certificate (bracketing against
         the true optimum is qcheck-covered in test_anytime) *)
      check_true "lower >= 1" (b2.S.lower >= 1);
      check_true "lower <= upper"
        (match b2.S.upper with Some u -> b2.S.lower <= u | None -> true)
  | o2, o4 ->
      Alcotest.failf "expected Bounded/Bounded, got %s/%s"
        (S.outcome_label o2) (S.outcome_label o4)

(* Under a fake constant clock every timing field is pinned, so two
   identical parallel runs must produce byte-identical stats, and
   jobs=2 vs jobs=4 must agree on everything except the memory
   footprint (lane counts scale with the domain count). *)
let fake_clock_deterministic () =
  Clock.set_source (Some (fun () -> 42.0));
  Fun.protect ~finally:(fun () -> Clock.set_source None) @@ fun () ->
  let g = fig1 () in
  let solve jobs = Prbp.Exact_prbp.solve ~jobs (pcfg 4) g in
  match (solve 2, solve 2, solve 4) with
  | S.Optimal a, S.Optimal b, S.Optimal c ->
      check_int "repeat: explored" a.S.stats.S.explored b.S.stats.S.explored;
      check_int "repeat: expansions" a.S.stats.S.expansions
        b.S.stats.S.expansions;
      check_int "repeat: pruned" a.S.stats.S.pruned b.S.stats.S.pruned;
      check_int "repeat: frontier" a.S.stats.S.frontier b.S.stats.S.frontier;
      (* mem_words is NOT compared: lane-buffer growth depends on which
         domain stole which chunk, an execution detail outside the
         determinism contract (optimum, interval, search counters) *)
      check_true "repeat: elapsed" (a.S.stats.S.elapsed_s = b.S.stats.S.elapsed_s);
      check_int "cost across jobs" a.S.cost c.S.cost;
      check_int "explored across jobs" a.S.stats.S.explored
        c.S.stats.S.explored;
      check_int "expansions across jobs" a.S.stats.S.expansions
        c.S.stats.S.expansions;
      check_int "pruned across jobs" a.S.stats.S.pruned c.S.stats.S.pruned;
      check_true "elapsed pinned by the fake clock"
        (a.S.stats.S.elapsed_s = 0.0 && c.S.stats.S.elapsed_s = 0.0)
  | _ -> Alcotest.fail "expected Optimal outcomes"

(* --- the sharded table under contention ---------------------------- *)

let key_of buf k =
  buf.(0) <- k * 0x9e37;
  buf.(1) <- k lxor 0x5bd1e995

let sharded_stress () =
  let t = Sharded.create ~shards:8 ~width:2 () in
  let jobs = 4 in
  let per = 4_000 in
  (* worker [id] inserts keys [id*per/2, id*per/2 + per): every key is
     attempted by two workers, so [find_or_add] must dedup under racing
     insertions while the shards resize underneath *)
  let worker id () =
    let buf = [| 0; 0 |] and back = [| 0; 0 |] in
    let fresh = ref 0 in
    for i = 0 to per - 1 do
      let k = (id * per / 2) + i in
      key_of buf k;
      let h, is_fresh = Sharded.find_or_add t buf k in
      if is_fresh then incr fresh;
      Sharded.read_key t h back;
      if back.(0) <> buf.(0) || back.(1) <> buf.(1) then
        failwith "read_key mismatch"
    done;
    !fresh
  in
  let helpers =
    Array.init (jobs - 1) (fun i -> Domain.spawn (worker (i + 1)))
  in
  let fresh0 = worker 0 () in
  let fresh = Array.fold_left (fun a d -> a + Domain.join d) fresh0 helpers in
  let distinct = (3 * per / 2) + per in
  check_int "distinct keys in the table" distinct (Sharded.length t);
  check_int "each key fresh exactly once" distinct fresh;
  let buf = [| 0; 0 |] in
  for k = 0 to distinct - 1 do
    key_of buf k;
    if Sharded.find t buf < 0 then Alcotest.failf "key %d lost" k
  done

let sharded_handles () =
  let t = Sharded.create ~shards:4 ~width:2 () in
  let buf = [| 0; 0 |] in
  for k = 0 to 499 do
    key_of buf k;
    let h = Sharded.add t buf (2 * k) in
    (* handles pack (index, shard) and must round-trip *)
    let s = Sharded.shard_of_handle t h in
    let j = Sharded.index_of_handle t h in
    check_int "handle round-trip" h (Sharded.handle t ~shard:s j);
    check_int "value by handle" (2 * k) (Sharded.value t h)
  done;
  check_int "length" 500 (Sharded.length t);
  Sharded.reset t;
  check_int "reset empties every shard" 0 (Sharded.length t)

(* --- spill tier ----------------------------------------------------- *)

(* tree(2,3) PRBP at r=3 has a ~1.3M-word full footprint; a 250k-word
   cap forces repeated eviction, and the solve must still finish with
   the exact optimum.  (Thresholds from measurement: the peak one-level
   frontier must fit under the cap or the solve correctly degrades to
   Bounded — see the sound-degrade case below.) *)
let spill_instance () =
  ((Prbp.Graphs.Tree.make ~k:2 ~depth:3).Prbp.Graphs.Tree.dag, 3)

let spill_reaches_optimum () =
  let g, r = spill_instance () in
  let opt = cost_exn "prbp full" (Prbp.Exact_prbp.solve (pcfg r) g) in
  List.iter
    (fun jobs ->
      let budget =
        S.Budget.v ~max_words:250_000 ~spill_words:50_000_000 ()
      in
      match Prbp.Exact_prbp.solve ~budget ~jobs (pcfg r) g with
      | S.Optimal o ->
          check_int
            (Printf.sprintf "cost under eviction (jobs=%d)" jobs)
            opt o.S.cost;
          check_true
            (Printf.sprintf "states were spilled (jobs=%d)" jobs)
            (o.S.stats.S.spilled > 0)
      | o ->
          Alcotest.failf "jobs=%d: expected Optimal, got %s" jobs
            (S.outcome_label o))
    [ 1; 3 ]

(* When even the spill tier cannot absorb the search, the solve stops
   at Max_words with a certified interval — never an unsound answer. *)
let spill_degrades_soundly () =
  let g, r = spill_instance () in
  let opt = cost_exn "prbp full" (Prbp.Exact_prbp.solve (pcfg r) g) in
  let budget = S.Budget.v ~max_words:60_000 ~spill_words:100_000 () in
  match Prbp.Exact_prbp.solve ~budget ~jobs:2 (pcfg r) g with
  | S.Bounded b ->
      check_true "stopped on the word cap" (b.S.stopped = S.Max_words);
      check_true "sound lower" (b.S.lower >= 1 && b.S.lower <= opt);
      check_true "sound upper"
        (match b.S.upper with Some u -> opt <= u | None -> true)
  | o -> Alcotest.failf "expected Bounded, got %s" (S.outcome_label o)

(* want_strategy disables the spill tier (gid compaction would orphan
   the parent links); the budget then applies as a plain word cap. *)
let spill_vs_strategy () =
  let g, r = spill_instance () in
  let budget = S.Budget.v ~max_words:60_000 ~spill_words:50_000_000 () in
  match Prbp.Exact_prbp.solve ~budget ~want_strategy:true (pcfg r) g with
  | S.Bounded b -> check_int "no spilling happened" 0 b.S.stats.S.spilled
  | S.Optimal o -> check_int "no spilling happened" 0 o.S.stats.S.spilled
  | S.Unsolvable _ -> Alcotest.fail "tree(2,3) is solvable"

(* --- prune auto-off -------------------------------------------------- *)

let prune_auto_off () =
  let g = fig1 () in
  let opt = cost_exn "rbp" (Prbp.Exact_rbp.solve (rcfg 4) g) in
  (* an aggressive threshold switches the residual checks off almost
     immediately (unless a prune landed first); the optimum must not
     move either way *)
  let budget = S.Budget.v ~check_every:1 ~prune_off_after:1 () in
  List.iter
    (fun jobs ->
      match Prbp.Exact_rbp.solve ~budget ~jobs (rcfg 4) g with
      | S.Optimal o ->
          check_int
            (Printf.sprintf "cost with auto-off armed (jobs=%d)" jobs)
            opt o.S.cost;
          check_true
            (Printf.sprintf "auto-off fired or pruning was live (jobs=%d)"
               jobs)
            (o.S.stats.S.prune_disabled || o.S.stats.S.pruned > 0)
      | o ->
          Alcotest.failf "jobs=%d: expected Optimal, got %s" jobs
            (S.outcome_label o))
    [ 1; 2 ];
  (* the default threshold never fires on a small instance *)
  match Prbp.Exact_rbp.solve (rcfg 4) g with
  | S.Optimal o ->
      check_false "default threshold stays on" o.S.stats.S.prune_disabled
  | _ -> Alcotest.fail "expected Optimal"

(* --- strategies from the parallel engine ----------------------------- *)

let par_strategy_replays () =
  let g = fig1 () in
  (match Prbp.Exact_prbp.solve ~jobs:3 ~want_strategy:true (pcfg 4) g with
  | S.Optimal { S.cost; strategy = Some moves; _ } ->
      check_int "PRBP optimal at jobs=3" 2 cost;
      check_int "replay agrees" cost (prbp_cost ~r:4 g moves)
  | _ -> Alcotest.fail "expected Optimal with a strategy");
  match Prbp.Exact_rbp.solve ~jobs:2 ~want_strategy:true (rcfg 4) g with
  | S.Optimal { S.cost; strategy = Some moves; _ } ->
      check_int "RBP optimal at jobs=2" 3 cost;
      check_int "replay agrees" cost (rbp_cost ~r:4 g moves)
  | _ -> Alcotest.fail "expected Optimal with a strategy"

(* --- harness jobs composition ---------------------------------------- *)

let compose_solve_jobs () =
  let module E = Prbp.Experiment in
  check_int "8 cores / 3 experiments" 2
    (E.solve_jobs ~cores:8 ~experiment_jobs:3);
  check_int "fewer cores than experiments" 1
    (E.solve_jobs ~cores:2 ~experiment_jobs:5);
  check_int "one experiment takes the host" 16
    (E.solve_jobs ~cores:16 ~experiment_jobs:1);
  for cores = 1 to 12 do
    for ej = 1 to 12 do
      let sj = E.solve_jobs ~cores ~experiment_jobs:ej in
      check_true "at least one domain per solve" (sj >= 1);
      check_true "product capped at the host cores"
        (sj = 1 || ej * sj <= cores)
    done
  done;
  List.iter
    (fun (cores, ej) ->
      match E.solve_jobs ~cores ~experiment_jobs:ej with
      | exception Invalid_argument _ -> ()
      | v -> Alcotest.failf "expected Invalid_argument, got %d" v)
    [ (0, 1); (1, 0); (-4, 2) ]

let suite =
  [
    ( "parallel",
      [
        qcheck_jobs_equiv_rbp;
        qcheck_jobs_equiv_prbp;
        case "jobs clamp" jobs_clamp;
        case "bounded runs are jobs-deterministic" bounded_deterministic;
        case "stats deterministic under a fake clock"
          fake_clock_deterministic;
        case "sharded table: 4-domain find_or_add stress" sharded_stress;
        case "sharded table: handle round-trips" sharded_handles;
        slow_case "spill tier reaches the optimum" spill_reaches_optimum;
        case "spill tier degrades to a sound interval"
          spill_degrades_soundly;
        case "want_strategy disables spilling" spill_vs_strategy;
        case "prune auto-off keeps the optimum" prune_auto_off;
        case "parallel strategies replay" par_strategy_replays;
        case "Experiment.solve_jobs composition" compose_solve_jobs;
      ] );
  ]

(* Experiments E21–E25: extensions beyond the paper's core results —
   the Section 8.2 / Appendix B.1 future directions made executable,
   plus ablations of this library's own design choices. *)

module Dag = Prbp.Dag
module E = Prbp.Experiment
module T = Prbp.Table

let pcfg ?(recompute = false) r =
  Prbp.Prbp_game.config ~one_shot:(not recompute) ~recompute ~r ()

let e21 =
  E.make ~id:"E21" ~paper:"Appendix B.1 (PRBP + re-computation, outlook)"
    ~claim:
      "The from-scratch CLEAR extension of PRBP is well-defined and can \
       strictly reduce the optimal I/O cost; on DAGs already at trivial \
       cost it gains nothing"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make ~header:[ "DAG"; "r"; "one-shot OPT"; "recompute OPT"; "gain" ]
      in
      let ok = ref true in
      let try_one name g r =
        let a = Solve_util.prbp_opt (pcfg r) g in
        let b = Solve_util.prbp_opt (pcfg ~recompute:true r) g in
        T.add_rowf t "%s|%d|%d|%d|%s" name r a b
          (if b < a then "strict" else "none");
        if b > a then ok := false;
        (a, b)
      in
      let _ = try_one "fig1" (fst (Prbp.Graphs.Fig1.full ())) 4 in
      let _ = try_one "diamond" (Prbp.Graphs.Basic.diamond ()) 2 in
      let _ = try_one "path(6)" (Prbp.Graphs.Basic.path 6) 2 in
      (* the witness found by exhaustive search over small DAGs *)
      let witness =
        Dag.make ~n:6
          [ (0, 2); (0, 3); (0, 4); (1, 2); (1, 4); (2, 4); (2, 5); (3, 4);
            (3, 5) ]
      in
      let a, b = try_one "witness (6 nodes)" witness 2 in
      T.print ppf t;
      Format.fprintf ppf
        "(the witness re-computes a shared intermediate instead of paying a \
         save/load round-trip — the mechanism sketched in Appendix B.1; the \
         optimal CLEAR-strategy replays through the rule-checking engine)@.";
      !ok && b = 9 && a = 10)

let e22 =
  E.make ~id:"E22" ~paper:"Theorems 6.5 / 6.7 with exact MIN values"
    ~claim:
      "With MIN_edge/MIN_dom computed exactly (ideal-lattice search), the \
       Theorem 6.5/6.7 lower bounds r·(MIN(2r)−1) are sound against exact \
       PRBP optima; Hong–Kung's r·(MIN_part(2r)−1) is sound for RBP"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "DAG"; "r"; "MIN_part"; "MIN_dom"; "MIN_edge"; "HK bound";
              "6.7 bound"; "6.5 bound"; "OPT_RBP"; "OPT_PRBP" ]
      in
      let ok = ref true in
      let show = function Some k -> string_of_int k | None -> "-" in
      let classes = function
        | Prbp.Minpart.Minimum { classes; _ } -> Some classes
        | Prbp.Minpart.No_partition | Prbp.Minpart.Truncated _ -> None
      in
      let try_one name g r =
        let s = 2 * r in
        let mp = classes (Prbp.Minpart.spartition g ~s) in
        let md = classes (Prbp.Minpart.dominator_partition g ~s) in
        let me = classes (Prbp.Minpart.edge_partition g ~s) in
        let hk = Prbp.Minpart.rbp_bound g ~r in
        let b67 = Prbp.Minpart.prbp_bound_dom g ~r in
        let b65 = Prbp.Minpart.prbp_bound_edge g ~r in
        let opt_r =
          match Solve_util.probe (Prbp.Exact_rbp.solve (Prbp.Rbp.config ~r ()) g) with
          | Solve_util.Cost c -> c
          | Solve_util.Infeasible | Solve_util.Truncated _ -> -1
        in
        let opt_p = Solve_util.prbp_opt (Prbp.Prbp_game.config ~r ()) g in
        T.add_rowf t "%s|%d|%s|%s|%s|%d|%d|%d|%s|%d" name r (show mp) (show md)
          (show me) hk b67 b65
          (if opt_r >= 0 then string_of_int opt_r else "-")
          opt_p;
        if b67 > opt_p || b65 > opt_p then ok := false;
        if opt_r >= 0 && hk > opt_r then ok := false;
        (* MIN_dom <= MIN_part always (Definition 6.6 drops a condition) *)
        match (md, mp) with
        | Some d, Some p -> if d > p then ok := false
        | _ -> ()
      in
      try_one "fig1" (fst (Prbp.Graphs.Fig1.full ())) 2;
      try_one "fig1" (fst (Prbp.Graphs.Fig1.full ())) 4;
      try_one "diamond" (Prbp.Graphs.Basic.diamond ()) 2;
      try_one "tree(2,3)" (Prbp.Graphs.Tree.make ~k:2 ~depth:3).Prbp.Graphs.Tree.dag 3;
      try_one "pyramid(3)" (Prbp.Graphs.Basic.pyramid 3) 2;
      try_one "fan_in(5)" (Prbp.Graphs.Basic.fan_in 5) 2;
      try_one "horner(4)" (Prbp.Graphs.Basic.horner 4) 2;
      T.print ppf t;
      Format.fprintf ppf
        "(the bounds are loose on these small instances — expected: they are \
         magnitude tools — but never unsound; and MIN_dom <= MIN_part \
         throughout, as Definition 6.6 implies)@.";
      !ok)

let e23 =
  E.make ~id:"E23" ~paper:"ablation: eviction policy of the heuristic pebbler"
    ~claim:
      "Belady (offline) eviction dominates LRU and FIFO across families; \
       for PRBP the greedy edge scheduler wins where partial aggregation \
       matters (matvec) and loses on depth-first structure — prbp_best \
       takes the minimum"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make
          ~header:[ "DAG"; "game"; "r"; "Belady"; "LRU"; "FIFO"; "greedy"; "best" ]
      in
      let ok = ref true in
      let families =
        [
          ("zipper(4,12)",
           (Prbp.Graphs.Zipper.make ~d:4 ~len:12).Prbp.Graphs.Zipper.dag, 6);
          ("fft(32)", (Prbp.Graphs.Fft.make ~m:32).Prbp.Graphs.Fft.dag, 6);
          ("grid 6x6", Prbp.Graphs.Basic.grid 6 6, 4);
          ("tree(2,6)",
           (Prbp.Graphs.Tree.make ~k:2 ~depth:6).Prbp.Graphs.Tree.dag, 3);
          ("matvec(6)",
           (Prbp.Graphs.Matvec.make ~m:6).Prbp.Graphs.Matvec.dag, 9);
          ("random(42)",
           Prbp.Graphs.Random_dag.make ~seed:42 ~layers:8 ~width:8 (), 8);
        ]
      in
      List.iter
        (fun (name, g, r) ->
          let r = max r (Dag.max_in_degree g + 1) in
          let cost p = Prbp.Heuristic.rbp_cost ~policy:p ~r g in
          let b = cost Prbp.Heuristic.Belady
          and l = cost Prbp.Heuristic.Lru
          and f = cost Prbp.Heuristic.Fifo in
          T.add_rowf t "%s|RBP|%d|%d|%d|%d|-|-" name r b l f;
          if b > l || b > f then ok := false;
          let costp p = Prbp.Heuristic.prbp_cost ~policy:p ~r g in
          let b' = costp Prbp.Heuristic.Belady
          and l' = costp Prbp.Heuristic.Lru
          and f' = costp Prbp.Heuristic.Fifo in
          let gr = Prbp.Heuristic.prbp_greedy_cost ~r g in
          let best = Prbp.Heuristic.prbp_best_cost ~r g in
          T.add_rowf t "%s|PRBP|%d|%d|%d|%d|%d|%d" name r b' l' f' gr best;
          if b' > l' || b' > f' then ok := false;
          if best > min b' gr then ok := false)
        families;
      T.print ppf t;
      !ok)

let e24 =
  E.make ~id:"E24"
    ~paper:"ablation: dominance pruning of the exact solvers"
    ~claim:
      "The deferred-deletion normalization changes no optimum and never \
       enlarges the explored state space (the big wins appear on dense \
       instances that the eager variant cannot finish at all)"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "DAG"; "game"; "r"; "OPT (pruned)"; "states (pruned)";
              "OPT (eager)"; "states (eager)"; "shrink" ]
      in
      let ok = ref true in
      let rbp_case name g r =
        match
          ( Solve_util.cost_explored
              (Prbp.Exact_rbp.solve (Prbp.Rbp.config ~r ()) g),
            Solve_util.cost_explored
              (Prbp.Exact_rbp.solve ~eager_deletes:true
                 (Prbp.Rbp.config ~r ()) g) )
        with
        | Some (c1, s1), Some (c2, s2) ->
            T.add_rowf t "%s|RBP|%d|%d|%d|%d|%d|%.1fx" name r c1 s1 c2 s2
              (float_of_int s2 /. float_of_int s1);
            if c1 <> c2 || s1 > s2 then ok := false
        | _ -> ok := false
      in
      let prbp_case name g r =
        match
          ( Solve_util.cost_explored
              (Prbp.Exact_prbp.solve (Prbp.Prbp_game.config ~r ()) g),
            Solve_util.cost_explored
              (Prbp.Exact_prbp.solve ~eager_deletes:true
                 (Prbp.Prbp_game.config ~r ())
                 g) )
        with
        | Some (c1, s1), Some (c2, s2) ->
            T.add_rowf t "%s|PRBP|%d|%d|%d|%d|%d|%.1fx" name r c1 s1 c2 s2
              (float_of_int s2 /. float_of_int s1);
            if c1 <> c2 || s1 > s2 then ok := false
        | _ -> ok := false
      in
      let g1, _ = Prbp.Graphs.Fig1.full () in
      rbp_case "fig1" g1 4;
      prbp_case "fig1" g1 4;
      let tr = (Prbp.Graphs.Tree.make ~k:2 ~depth:3).Prbp.Graphs.Tree.dag in
      rbp_case "tree(2,3)" tr 3;
      prbp_case "tree(2,3)" tr 3;
      let py = Prbp.Graphs.Basic.pyramid 3 in
      rbp_case "pyramid(3)" py 4;
      prbp_case "pyramid(3)" py 4;
      let ch = Prbp.Graphs.Fig1.chained ~copies:2 in
      rbp_case "chained(2)" ch 4;
      prbp_case "chained(2)" ch 4;
      T.print ppf t;
      !ok)

let e25 =
  E.make ~id:"E25" ~paper:"Section 8.2 (sparse computations, outlook)"
    ~claim:
      "The matvec separation generalizes to irregular sparse patterns: \
       PRBP pebbles any SpMV at the trivial cost with rows+3 pebbles, \
       while one-shot RBP needs max-row-nnz+1 pebbles to exist at all and \
       pays extra gather I/O"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "pattern"; "nnz"; "max row"; "PRBP streamed"; "trivial";
              "RBP heuristic"; "RBP r_min" ]
      in
      let ok = ref true in
      List.iter
        (fun (seed, rows, cols, density) ->
          let sp = Prbp.Graphs.Spmv.make ~seed ~density ~rows ~cols () in
          let g = sp.Prbp.Graphs.Spmv.dag in
          let mr = Prbp.Graphs.Spmv.max_row_nnz sp in
          let prbp =
            match
              Prbp.Prbp_game.check
                (Prbp.Prbp_game.config ~r:(rows + 3) ())
                g
                (Prbp.Strategies.spmv_prbp sp)
            with
            | Ok c -> c
            | Error e -> failwith e
          in
          let rbp = Prbp.Heuristic.rbp_cost ~r:(max (mr + 1) (rows + 3)) g in
          T.add_rowf t "%dx%d @ %.2f|%d|%d|%d|%d|%d|%d" rows cols density
            (Prbp.Graphs.Spmv.nnz sp)
            mr prbp
            (Dag.trivial_cost g)
            rbp (mr + 1);
          if prbp <> Dag.trivial_cost g then ok := false;
          if rbp < prbp then ok := false)
        [
          (1, 8, 8, 0.2); (2, 16, 16, 0.15); (3, 16, 16, 0.4);
          (4, 32, 24, 0.1); (5, 24, 48, 0.08);
        ];
      T.print ppf t;
      Format.fprintf ppf
        "(row aggregation is associative-commutative, so the streaming \
         strategy keeps all partial outputs dark and touches every input \
         exactly once — the practical moral of Section 8.2)@.";
      !ok)


let e26 =
  E.make ~id:"E26" ~paper:"cache thresholds + the black pebble game (B.2 context)"
    ~claim:
      "The trivial-cost cache threshold r* (least r with zero non-trivial \
       I/O, computed exactly) satisfies r*_PRBP <= r*_RBP everywhere, \
       r*_RBP >= the black pebbling number, and the Section-4 separations \
       reappear as threshold gaps (fan-in: 2 vs d+1)"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "DAG"; "black"; "black+slide"; "feasible RBP"; "r*_RBP";
              "r*_PRBP"; "threshold gap" ]
      in
      let ok = ref true in
      let show name g =
        let b = Prbp.Black.number g in
        let bs = Prbp.Black.number ~sliding:true g in
        let rr = Prbp.Thresholds.rbp_trivial_r g in
        let rp = Prbp.Thresholds.prbp_trivial_r g in
        let s = function Some x -> string_of_int x | None -> "-" in
        T.add_rowf t "%s|%d|%d|%d|%s|%s|%s" name b bs
          (Prbp.Thresholds.rbp_feasible_r g)
          (s rr) (s rp)
          (match (rr, rp) with
          | Some a, Some b -> string_of_int (a - b)
          | _ -> "-");
        (match (rr, rp) with
        | Some a, Some p ->
            if p > a then ok := false;
            if a < b then ok := false
        | _ -> ok := false);
        if bs > b || b > bs + 1 then ok := false
      in
      show "path(5)" (Prbp.Graphs.Basic.path 5);
      show "diamond" (Prbp.Graphs.Basic.diamond ());
      show "fan_in(4)" (Prbp.Graphs.Basic.fan_in 4);
      show "fan_in(6)" (Prbp.Graphs.Basic.fan_in 6);
      show "pyramid(2)" (Prbp.Graphs.Basic.pyramid 2);
      show "pyramid(3)" (Prbp.Graphs.Basic.pyramid 3);
      show "fig1" (fst (Prbp.Graphs.Fig1.full ()));
      show "tree(2,2)" (Prbp.Graphs.Tree.make ~k:2 ~depth:2).Prbp.Graphs.Tree.dag;
      show "tree(2,3)" (Prbp.Graphs.Tree.make ~k:2 ~depth:3).Prbp.Graphs.Tree.dag;
      show "horner(3)" (Prbp.Graphs.Basic.horner 3);
      show "matvec(2)" (Prbp.Graphs.Matvec.make ~m:2).Prbp.Graphs.Matvec.dag;
      show "stencil(3,3)" (Prbp.Graphs.Basic.stencil1d ~steps:3 ~width:3);
      T.print ppf t;
      Format.fprintf ppf
        "(r*_RBP >= black number because a trivial-cost RBP pebbling is a \
         one-shot black pebbling; PRBP reaches zero non-trivial I/O with \
         less cache everywhere, collapsing to r = 2 on pure aggregations)@.";
      !ok)


let e27 =
  E.make ~id:"E27" ~paper:"Section 8.1 outlook (multiple processors)"
    ~claim:
      "In the multiprocessor game (per-processor caches, shared slow \
       memory, total-I/O cost), parallel streaming matvec costs exactly \
       m² + (p+1)·m — duplicated input loads are the price of \
       parallelism — and handing a partial aggregation between processors \
       costs exactly one save + one load"
    (fun ppf (_ : E.ctx) ->
      let ok = ref true in
      let t =
        T.make ~header:[ "m"; "processors"; "per-proc r"; "total I/O"; "formula" ]
      in
      List.iter
        (fun (m, p) ->
          let mv = Prbp.Graphs.Matvec.make ~m in
          let r = ((m + p - 1) / p) + 3 in
          match
            Prbp.Multi.P.check
              (Prbp.Multi.config ~p ~r ())
              mv.Prbp.Graphs.Matvec.dag
              (Prbp.Strategies.matvec_prbp_multi ~p mv)
          with
          | Ok c ->
              let f = (m * m) + ((p + 1) * m) in
              T.add_rowf t "%d|%d|%d|%d|%d" m p r c f;
              if c <> f then ok := false
          | Error e -> failwith e)
        [ (8, 1); (8, 2); (8, 4); (8, 8); (12, 1); (12, 2); (12, 3); (12, 4) ];
      T.print ppf t;
      let t2 =
        T.make
          ~header:
            [ "fan-in d"; "processors"; "cost"; "formula d+1+2(p-1)" ]
      in
      List.iter
        (fun (d, halves) ->
          let g = Prbp.Graphs.Basic.fan_in d in
          match
            Prbp.Multi.P.check
              (Prbp.Multi.config ~p:halves ~r:2 ())
              g
              (Prbp.Strategies.fan_in_handoff ~halves g)
          with
          | Ok c ->
              let f = d + 1 + (2 * (halves - 1)) in
              T.add_rowf t2 "%d|%d|%d|%d" d halves c f;
              if c <> f then ok := false
          | Error e -> failwith e)
        [ (12, 1); (12, 2); (12, 3); (12, 4); (12, 6) ];
      T.print ppf t2;
      Format.fprintf ppf
        "(with p = 1 both strategies reproduce the single-processor costs \
         exactly — the multiprocessor game specializes to Sections 1/3, as \
         the test-suite checks move-for-move)@.";
      !ok)


let e28 =
  E.make ~id:"E28" ~paper:"empirical survey (context for Theorem 4.8)"
    ~claim:
      "Across exhaustively solved random DAGs, OPT_PRBP < OPT_RBP occurs on \
       a substantial fraction of instances at tight capacities and vanishes \
       as r grows — deciding WHICH instances gap is NP-hard (Thm 4.8), but \
       the phenomenon itself is common"
    ~budget:(Prbp.Solver.Budget.states 400_000)
    (fun ppf (ctx : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "capacity"; "instances"; "solved"; "truncated"; "with gap";
              "gap share"; "max gap"; "mean RBP"; "mean PRBP" ]
      in
      let ok = ref true in
      let truncations = ref 0 in
      let survey ~delta =
        let solved = ref 0
        and truncated = ref 0
        and gaps = ref 0
        and max_gap = ref 0
        and sum_r = ref 0
        and sum_p = ref 0
        and total = ref 0 in
        for seed = 1 to 60 do
          incr total;
          let g =
            Prbp.Graphs.Random_dag.make ~seed ~layers:4 ~width:2
              ~density:0.35 ~max_in_degree:4 ()
          in
          let r = Dag.max_in_degree g + 1 + delta in
          let pr =
            Solve_util.probe
              (Prbp.Exact_rbp.solve ~budget:ctx.E.budget
                 ~telemetry:ctx.E.telemetry ~jobs:ctx.E.solve_jobs
                 (Prbp.Rbp.config ~r ()) g)
          and pp =
            Solve_util.probe
              (Prbp.Exact_prbp.solve ~budget:ctx.E.budget
                 ~telemetry:ctx.E.telemetry ~jobs:ctx.E.solve_jobs
                 (Prbp.Prbp_game.config ~r ())
                 g)
          in
          (* a blown budget no longer aborts the probe: it yields a
             certified interval, which must still be sound *)
          if not (Solve_util.interval_sane pr && Solve_util.interval_sane pp)
          then ok := false;
          match (pr, pp) with
          | Solve_util.Cost rb, Solve_util.Cost pb ->
              incr solved;
              sum_r := !sum_r + rb;
              sum_p := !sum_p + pb;
              if pb < rb then begin
                incr gaps;
                if rb - pb > !max_gap then max_gap := rb - pb
              end;
              if pb > rb then ok := false
          | Solve_util.Truncated _, _ | _, Solve_util.Truncated _ ->
              incr truncated
          | _ -> ()
        done;
        truncations := !truncations + !truncated;
        T.add_rowf t "Δin+1+%d|%d|%d|%d|%d|%.0f%%|%d|%.1f|%.1f" delta !total
          !solved !truncated !gaps
          (100. *. float_of_int !gaps /. float_of_int (max 1 !solved))
          !max_gap
          (float_of_int !sum_r /. float_of_int (max 1 !solved))
          (float_of_int !sum_p /. float_of_int (max 1 !solved));
        (!solved, !gaps)
      in
      let s0, g0 = survey ~delta:0 in
      let _ = survey ~delta:1 in
      let _, g3 = survey ~delta:3 in
      T.print ppf t;
      Format.fprintf ppf
        "(at the tightest feasible capacity a large share of instances \
         strictly benefit from partial computation; with ample cache the \
         gap disappears, as Proposition 4.1 plus trivial-cost saturation \
         predict; %d probes hit the %d-state budget and returned certified \
         intervals instead of aborting)@."
        !truncations ctx.E.budget.Prbp.Solver.Budget.max_states;
      !ok && s0 > 30 && g0 > 0 && g3 <= g0)

let e29 =
  E.make ~id:"E29" ~paper:"Section 8.1 (multiprocessor extension, p = 1)"
    ~claim:
      "The exact multiprocessor solver at p = 1 reproduces the \
       single-processor optima move-for-move: RBP-MC and PRBP-MC \
       specialize to the Section-1/3 games"
    ~budget:(Prbp.Solver.Budget.states 400_000)
    (fun ppf (ctx : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "DAG"; "r"; "OPT_RBP"; "RBP-MC p=1"; "OPT_PRBP"; "PRBP-MC p=1" ]
      in
      let ok = ref true in
      let matches = ref 0 and total = ref 0 and truncated = ref 0 in
      let s ppv = Format.asprintf "%a" Solve_util.pp_probe ppv in
      let try_one name g r =
        let budget = ctx.E.budget and telemetry = ctx.E.telemetry in
        let rb =
          Solve_util.probe
            (Prbp.Exact_rbp.solve ~budget ~telemetry (Prbp.Rbp.config ~r ()) g)
        and mrb =
          Solve_util.probe
            (Prbp.Exact_multi.rbp_solve ~budget ~telemetry
               (Prbp.Multi.config ~p:1 ~r ())
               g)
        and pb =
          Solve_util.probe
            (Prbp.Exact_prbp.solve ~budget ~telemetry
               (Prbp.Prbp_game.config ~r ())
               g)
        and mpb =
          Solve_util.probe
            (Prbp.Exact_multi.prbp_solve ~budget ~telemetry
               (Prbp.Multi.config ~p:1 ~r ())
               g)
        in
        List.iter
          (fun p -> if not (Solve_util.interval_sane p) then ok := false)
          [ rb; mrb; pb; mpb ];
        let probed = [ rb; mrb; pb; mpb ] in
        if
          List.exists
            (function Solve_util.Truncated _ -> true | _ -> false)
            probed
        then incr truncated
        else begin
          incr total;
          if rb = mrb && pb = mpb then incr matches else ok := false;
          if name <> "" then
            T.add_rowf t "%s|%d|%s|%s|%s|%s" name r (s rb) (s mrb) (s pb)
              (s mpb)
        end
      in
      try_one "fig1" (fst (Prbp.Graphs.Fig1.full ())) 4;
      try_one "tree(2,3)" (Prbp.Graphs.Tree.make ~k:2 ~depth:3).Prbp.Graphs.Tree.dag 3;
      try_one "zipper(3,3)"
        (Prbp.Graphs.Zipper.make ~d:3 ~len:3).Prbp.Graphs.Zipper.dag 5;
      try_one "pyramid(3)" (Prbp.Graphs.Basic.pyramid 3) 3;
      try_one "diamond" (Prbp.Graphs.Basic.diamond ()) 2;
      for seed = 1 to 8 do
        List.iter
          (fun r ->
            try_one "" (* random instances counted, not tabulated *)
              (Prbp.Graphs.Random_dag.make ~seed ~layers:3 ~width:3 ())
              r)
          [ 3; 4 ]
      done;
      T.print ppf t;
      Format.fprintf ppf
        "p=1 optima agree on %d/%d solved instances (named above plus \
         random 3-layer DAGs at r = 3, 4; %d probes returned budget-bounded \
         intervals and are excluded from the comparison; agreement \
         includes joint infeasibility)@."
        !matches !total !truncated;
      !ok && !total >= 15)

let e30 =
  E.make ~id:"E30" ~paper:"Section 8.1 (multiprocessor extension, p = 2)"
    ~claim:
      "At equal per-processor capacity a second private cache never \
       lowers the optimal communication volume on the Section-4 families \
       (handing a value across processors costs exactly the save+load an \
       eviction would) — pooling the same total capacity into one cache \
       is what helps"
    ~budget:(Prbp.Solver.Budget.states 20_000_000)
    (fun ppf (ctx : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "DAG"; "game"; "r"; "p=1"; "p=2"; "saving"; "p=1, 2r" ]
      in
      let ok = ref true in
      let budget = ctx.E.budget and telemetry = ctx.E.telemetry in
      let row name game g r =
        let p1, p2, fat =
          match game with
          | "rbp" ->
              ( Solve_util.probe
                  (Prbp.Exact_rbp.solve ~budget ~telemetry
                     (Prbp.Rbp.config ~r ()) g),
                Solve_util.probe
                  (Prbp.Exact_multi.rbp_solve ~budget ~telemetry
                     (Prbp.Multi.config ~p:2 ~r ())
                     g),
                Solve_util.probe
                  (Prbp.Exact_rbp.solve ~budget ~telemetry
                     (Prbp.Rbp.config ~r:(2 * r) ())
                     g) )
          | _ ->
              ( Solve_util.probe
                  (Prbp.Exact_prbp.solve ~budget ~telemetry
                     (Prbp.Prbp_game.config ~r ())
                     g),
                Solve_util.probe
                  (Prbp.Exact_multi.prbp_solve ~budget ~telemetry
                     (Prbp.Multi.config ~p:2 ~r ())
                     g),
                Solve_util.probe
                  (Prbp.Exact_prbp.solve ~budget ~telemetry
                     (Prbp.Prbp_game.config ~r:(2 * r) ())
                     g) )
        in
        List.iter
          (fun p -> if not (Solve_util.interval_sane p) then ok := false)
          [ p1; p2; fat ];
        let s ppv = Format.asprintf "%a" Solve_util.pp_probe ppv in
        (match (p1, p2) with
        | Solve_util.Cost a, Solve_util.Cost b ->
            (* a second processor can never hurt (play on one \
               processor) and, the claim says, never helped either *)
            if b > a then ok := false;
            T.add_rowf t "%s|%s|%d|%s|%s|%d|%s" name game r (s p1) (s p2)
              (a - b) (s fat)
        | Solve_util.Infeasible, Solve_util.Infeasible ->
            T.add_rowf t "%s|%s|%d|-|-|-|%s" name game r (s fat)
        | Solve_util.Truncated _, _ | _, Solve_util.Truncated _ ->
            (* budget-bounded probes report their certified intervals
               but cannot certify the savings claim *)
            T.add_rowf t "%s|%s|%d|%s|%s|?|%s" name game r (s p1) (s p2)
              (s fat)
        | _ -> ok := false);
        (* the sandwich: one cache of 2r simulates both halves with no \
           cross-processor traffic *)
        match (p2, fat) with
        | Solve_util.Cost b, Solve_util.Cost f -> if f > b then ok := false
        | _ -> ()
      in
      let fig1 = fst (Prbp.Graphs.Fig1.full ()) in
      let tree22 = (Prbp.Graphs.Tree.make ~k:2 ~depth:2).Prbp.Graphs.Tree.dag in
      let zip22 = (Prbp.Graphs.Zipper.make ~d:2 ~len:2).Prbp.Graphs.Zipper.dag in
      let zip33 = (Prbp.Graphs.Zipper.make ~d:3 ~len:3).Prbp.Graphs.Zipper.dag in
      row "fig1" "rbp" fig1 3;
      row "fig1" "prbp" fig1 2;
      row "fig1" "prbp" fig1 3;
      row "tree(2,2)" "rbp" tree22 3;
      row "tree(2,2)" "prbp" tree22 2;
      row "zipper(2,2)" "prbp" zip22 2;
      row "zipper(3,3)" "prbp" zip33 3;
      T.print ppf t;
      Format.fprintf ppf
        "(savings are uniformly 0: in the communication-volume model, \
         private caches only add handoff I/O, while the 2r column shows \
         pooled capacity strictly helping on fig1 and the tree)@.";
      !ok)

let all = [ e21; e22; e23; e24; e25; e26; e27; e28; e29; e30 ]

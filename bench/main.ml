(* Benchmark & experiment harness: regenerates every quantitative claim
   of the paper (one experiment per proposition / theorem / figure),
   then runs the solver throughput benchmark and Bechamel
   micro-benchmarks of the library.

     dune exec bench/main.exe               # everything
     dune exec bench/main.exe -- --no-perf  # experiments only
     dune exec bench/main.exe -- --perf     # benchmarks only
     dune exec bench/main.exe -- E03 E08    # a subset of experiments
     dune exec bench/main.exe -- -j 4       # 4 worker domains
     dune exec bench/main.exe -- --profile  # span-tree timing summary
     dune exec bench/main.exe -- --profile-out trace.json --metrics-out m.prom
     dune exec bench/main.exe -- --serve    # prbpd load generator only  *)

let experiments =
  Exp_fundamentals.all @ Exp_partitions.all @ Exp_bounds.all
  @ Exp_variants.all @ Exp_extensions.all @ Exp_bracket.all
  @ Exp_frontier.all

let default_jobs = min 8 (Domain.recommended_domain_count ())

let usage () =
  prerr_endline
    "usage: main.exe [--perf|--no-perf] [--check-widths] [--serve] [-j N] \
     [--profile] [--profile-out FILE] [--metrics-out FILE] \
     [EXPERIMENT_ID ...]";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let perf_only = ref false in
  let no_perf = ref false in
  let check_widths = ref false in
  let serve = ref false in
  let jobs = ref default_jobs in
  (* perf's parallel section (and its minutes-long huge case) only runs
     on an explicit -j N, never from the host-core default *)
  let jobs_set = ref false in
  let profile = ref false in
  let profile_out = ref None in
  let metrics_out = ref None in
  let ids = ref [] in
  let rec parse = function
    | [] -> ()
    | "--perf" :: rest ->
        perf_only := true;
        parse rest
    | "--no-perf" :: rest ->
        no_perf := true;
        parse rest
    | "--check-widths" :: rest ->
        check_widths := true;
        parse rest
    | "--serve" :: rest ->
        serve := true;
        parse rest
    | "--profile" :: rest ->
        profile := true;
        parse rest
    | "--profile-out" :: f :: rest ->
        profile_out := Some f;
        parse rest
    | "--metrics-out" :: f :: rest ->
        metrics_out := Some f;
        parse rest
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := n;
            jobs_set := true;
            parse rest
        | _ -> usage ())
    | a :: rest when String.length a > 2 && String.sub a 0 2 = "-j" -> (
        match int_of_string_opt (String.sub a 2 (String.length a - 2)) with
        | Some n when n >= 1 ->
            jobs := n;
            jobs_set := true;
            parse rest
        | _ -> usage ())
    | a :: _ when String.length a > 1 && a.[0] = '-' -> usage ()
    | a :: rest ->
        ids := a :: !ids;
        parse rest
  in
  parse args;
  let ids = List.rev !ids in
  (* Spans also turn metrics on: the per-experiment span attrs
     (engine_expansions) are counter deltas and read 0 otherwise. *)
  if !profile || !profile_out <> None then begin
    Prbp.Obs.Span.set_enabled true;
    Prbp.Obs.Metrics.set_enabled true
  end;
  if !metrics_out <> None then Prbp.Obs.Metrics.set_enabled true;
  let ppf = Format.std_formatter in
  Format.fprintf ppf
    "PRBP experiment harness — reproducing \"The Impact of Partial \
     Computations on the Red-Blue Pebble Game\" (SPAA 2025)@.";
  if !check_widths then begin
    (* the width gate is its own mode: bracket cases vs the committed
       BENCH_solver.json, nothing else *)
    let code = Perf.check_widths ppf in
    Format.pp_print_flush ppf ();
    exit code
  end;
  if !serve then begin
    (* the prbpd load generator is also its own mode: it boots the
       daemon in-process and patches BENCH_solver.json's serve field *)
    let code = Exp_serve.run ppf in
    Format.pp_print_flush ppf ();
    exit code
  end;
  if not !perf_only then begin
    let selected =
      match ids with
      | [] -> experiments
      | ids ->
          List.filter (fun e -> List.mem e.Prbp.Experiment.id ids) experiments
    in
    let confirmed, total = Prbp.Experiment.run_all ~jobs:!jobs ppf selected in
    if confirmed <> total then exit 1
  end;
  if not !no_perf then begin
    Perf.run_solver ~jobs:(if !jobs_set then !jobs else 1) ppf;
    Perf.run ppf
  end;
  (* exports last, so they cover experiments and benchmarks alike *)
  let write path s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  Option.iter (fun p -> write p (Prbp.Obs.Span.to_chrome ())) !profile_out;
  Option.iter (fun p -> write p (Prbp.Obs.Metrics.to_prometheus ())) !metrics_out;
  if !profile then
    Format.fprintf ppf "@.=== PROFILE — span tree ===@.@.%s@."
      (Prbp.Obs.Span.to_text ());
  Format.pp_print_flush ppf ()

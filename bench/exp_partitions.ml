(* Experiments E09–E12: Sections 4.4, 5 and 6.1–6.2 — the hardness
   reduction and the partition machinery. *)

module Dag = Prbp.Dag
module E = Prbp.Experiment
module T = Prbp.Table
module U = Prbp.Graphs.Ugraph
module H = Prbp.Graphs.Hardness48

let e09 =
  E.make ~id:"E09" ~paper:"Theorem 4.8 / Lemma 4.10 / Appendix A.4"
    ~claim:
      "Deciding OPT_PRBP < OPT_RBP is NP-hard: the reduction from \
       MaxInSet-Vertex is constructible with the A.4 parameters, and the \
       encoded answers match the exhaustive oracle"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "G0"; "v0"; "max-inset size"; "v0 in a max set?"; "r"; "nodes";
              "edges"; "encoded" ]
      in
      let ok = ref true in
      let instance name g0 v0 =
        let yes = U.maxinset_vertex g0 v0 in
        let h = H.make ~g0 ~v0 () in
        (* structural invariants from Appendix A.4 *)
        let d = h.H.r - 2 in
        let n0 = U.n_nodes g0 in
        if d <> h.H.b + (4 * n0) + 3 then ok := false;
        if Array.length h.H.z1 <> 3 || Array.length h.H.z2 <> 3 then
          ok := false;
        if Dag.in_degree h.H.dag h.H.w <> 6 then ok := false;
        Array.iter
          (fun (gad : H.gadget) ->
            if Array.length gad.H.group <> d then ok := false;
            if Array.length gad.H.chain <> h.H.ell then ok := false)
          (Array.append h.H.h1 h.H.h2);
        T.add_rowf t "%s|%d|%d|%b|%d|%d|%d|%s" name v0
          (U.max_independent_size g0)
          yes h.H.r (Dag.n_nodes h.H.dag) (Dag.n_edges h.H.dag)
          (if yes then "OPT_PRBP = OPT_RBP" else "OPT_PRBP < OPT_RBP")
      in
      instance "P3" (U.path_graph 3) 0;
      instance "P3" (U.path_graph 3) 1;
      instance "C4" (U.cycle_graph 4) 0;
      instance "C5" (U.cycle_graph 5) 1;
      instance "K3" (U.complete 3) 0;
      T.print ppf t;
      Format.fprintf ppf
        "(the reduction is polynomial: each instance above is built in \
         milliseconds; its correctness rests on the machine-checked \
         Proposition 4.6 gadget of E07)@.";
      !ok)

let e10 =
  E.make ~id:"E10" ~paper:"Lemma 5.4 / Figure 3"
    ~claim:
      "Hong–Kung S-partition bounds FAIL for PRBP: the Figure-3 DAG has \
       OPT_PRBP = 8 = trivial, yet every S(=6)-partition needs Θ(n) classes"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "|H_i|"; "nodes"; "PRBP cost (r=3)"; "proof class bound";
              "greedy classes"; "implied (wrong) RBP-style bound" ]
      in
      let ok = ref true in
      List.iter
        (fun h ->
          let l = Prbp.Graphs.Lemma54.make ~group_size:h in
          let g = l.Prbp.Graphs.Lemma54.dag in
          let cost =
            match
              Prbp.Prbp_game.check
                (Prbp.Prbp_game.config ~r:3 ())
                g
                (Prbp.Strategies.lemma54_prbp l)
            with
            | Ok c -> c
            | Error e -> failwith e
          in
          let bound = Prbp.Graphs.Lemma54.spartition_class_lower_bound l in
          let greedy = Prbp.Spart.greedy_spartition g ~s:6 in
          (match Prbp.Spart.is_spartition g ~s:6 greedy with
          | Ok () -> ()
          | Error _ -> ok := false);
          let k = Array.length greedy in
          T.add_rowf t "%d|%d|%d|%d|%d|%d" h (Dag.n_nodes g) cost bound k
            (Prbp.Spart.io_lower_bound ~r:3 ~min_classes:bound);
          if cost <> 8 then ok := false;
          if k < bound then ok := false)
        [ 10; 20; 40; 80 ];
      T.print ppf t;
      (* the key dominator fact behind the proof *)
      let l = Prbp.Graphs.Lemma54.make ~group_size:12 in
      let g = l.Prbp.Graphs.Lemma54.dag in
      let v0 = Prbp.Bitset.create (Dag.n_nodes g) in
      Prbp.Bitset.add v0 (Prbp.Graphs.Lemma54.sink l);
      for i = 0 to 6 do
        Prbp.Bitset.add v0 (List.hd (Prbp.Graphs.Lemma54.group l i))
      done;
      let md = Prbp.Dominator.min_dominator_size g v0 in
      Format.fprintf ppf
        "min dominator of a class meeting all 7 groups + sink: %d (> S = 6, \
         computed by max-flow)@."
        md;
      if md <= 6 then ok := false;
      Format.fprintf ppf
        "conclusion: the class count (and hence the S-partition I/O bound) \
         grows linearly while the true PRBP cost stays 8 — S-partitions do \
         not transfer to PRBP@.";
      !ok)

let sandwich ~r ~cost ~k = r * k >= cost && cost >= r * (k - 1)

let e11 =
  E.make ~id:"E11" ~paper:"Lemma 6.4 / Theorem 6.5"
    ~claim:
      "Every PRBP pebbling of cost C yields a valid (2r)-edge partition \
       into k classes with r·k >= C >= r·(k−1)"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make ~header:[ "DAG"; "r"; "cost C"; "classes k"; "valid"; "sandwich" ]
      in
      let ok = ref true in
      let try_one name g r moves =
        let cost =
          match Prbp.Prbp_game.check (Prbp.Prbp_game.config ~r ()) g moves with
          | Ok c -> c
          | Error e -> failwith e
        in
        let cls = Prbp.Extract.edge_partition_of_prbp ~r g moves in
        let valid =
          match Prbp.Spart.is_edge_partition g ~s:(2 * r) cls with
          | Ok () -> true
          | Error _ -> false
        in
        let k = Array.length cls in
        let sw = sandwich ~r ~cost ~k in
        T.add_rowf t "%s|%d|%d|%d|%b|%b" name r cost k valid sw;
        if not (valid && sw) then ok := false
      in
      let tr = Prbp.Graphs.Tree.make ~k:2 ~depth:5 in
      try_one "tree(2,5)" tr.Prbp.Graphs.Tree.dag 3
        (Prbp.Strategies.tree_prbp tr);
      let z = Prbp.Graphs.Zipper.make ~d:4 ~len:8 in
      try_one "zipper(4,8)" z.Prbp.Graphs.Zipper.dag 6
        (Prbp.Strategies.zipper_prbp z);
      let mv = Prbp.Graphs.Matvec.make ~m:4 in
      try_one "matvec(4)" mv.Prbp.Graphs.Matvec.dag 7
        (Prbp.Strategies.matvec_prbp mv);
      let mm = Prbp.Graphs.Matmul.make ~m1:4 ~m2:4 ~m3:4 in
      try_one "matmul(4x4x4)" mm.Prbp.Graphs.Matmul.dag 14
        (Prbp.Strategies.matmul_tiled ~ti:2 ~tk:2 ~tj:2 mm);
      List.iter
        (fun seed ->
          let g = Prbp.Graphs.Random_dag.make ~seed ~layers:5 ~width:4 () in
          try_one (Printf.sprintf "random(%d)" seed) g 3
            (Prbp.Heuristic.prbp ~r:3 g))
        [ 5; 6; 7 ];
      T.print ppf t;
      !ok)

let e12 =
  E.make ~id:"E12" ~paper:"Lemma 6.8 / Theorem 6.7"
    ~claim:
      "Every PRBP pebbling of cost C yields a valid (2r)-dominator \
       partition into k classes with r·k >= C >= r·(k−1)"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make ~header:[ "DAG"; "r"; "cost C"; "classes k"; "valid"; "sandwich" ]
      in
      let ok = ref true in
      let try_one name g r moves =
        let cost =
          match Prbp.Prbp_game.check (Prbp.Prbp_game.config ~r ()) g moves with
          | Ok c -> c
          | Error e -> failwith e
        in
        let cls = Prbp.Extract.dominator_partition_of_prbp ~r g moves in
        let valid =
          match Prbp.Spart.is_dominator_partition g ~s:(2 * r) cls with
          | Ok () -> true
          | Error _ -> false
        in
        let k = Array.length cls in
        let sw = sandwich ~r ~cost ~k in
        T.add_rowf t "%s|%d|%d|%d|%b|%b" name r cost k valid sw;
        if not (valid && sw) then ok := false
      in
      let f = Prbp.Graphs.Fft.make ~m:16 in
      try_one "fft(16)" f.Prbp.Graphs.Fft.dag 6
        (Prbp.Move.rbp_to_prbp f.Prbp.Graphs.Fft.dag
           (Prbp.Strategies.fft_blocked ~r:6 f));
      let tr = Prbp.Graphs.Tree.make ~k:3 ~depth:3 in
      try_one "tree(3,3)" tr.Prbp.Graphs.Tree.dag 4
        (Prbp.Strategies.tree_prbp tr);
      let l = Prbp.Graphs.Lemma54.make ~group_size:15 in
      try_one "lemma54(15)" l.Prbp.Graphs.Lemma54.dag 3
        (Prbp.Strategies.lemma54_prbp l);
      List.iter
        (fun seed ->
          let g = Prbp.Graphs.Random_dag.make ~seed ~layers:4 ~width:5 () in
          try_one (Printf.sprintf "random(%d)" seed) g 4
            (Prbp.Heuristic.prbp ~r:4 g))
        [ 8; 9; 10 ];
      T.print ppf t;
      Format.fprintf ppf
        "(together with E10: the edge/dominator variants transfer to PRBP \
         where the plain S-partition does not)@.";
      !ok)

let all = [ e09; e10; e11; e12 ]

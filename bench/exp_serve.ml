(* prbpd load generator ([--serve]): boots the daemon in-process,
   drives a mixed solve/bracket workload with a repeated-DAG mix from
   parallel client domains, and reports latency percentiles, cache-hit
   ratio and certificate spot-checks.  The summary lands as the
   single-line "serve" field of BENCH_solver.json (since schema v8;
   the /healthz readiness probe also checks the daemon's versioned
   health body against this build's wire + bench schema). *)

module Wire = Prbp.Wire
module Serve = Prbp.Serve

let port = 18461

let total_requests = 1200

let clients = 4

(* ------------------------------------------------------------------ *)
(* The workload: a small pool of distinct (dag, game, r, kind) work
   items, cycled through by every client.  12 distinct cache keys over
   1200 requests puts the steady-state hit ratio at 99%. *)

type item = {
  body : string;  (* encoded wire request, want_strategy on *)
  path : string;
  dag : Prbp.Dag.t;
  game : Wire.game;
  r : int;
}

let work_items () =
  let diamond = Prbp.Dag.make ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let chain = Prbp.Dag.make ~n:6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ] in
  let tree = (Prbp.Graphs.Tree.make ~k:2 ~depth:3).Prbp.Graphs.Tree.dag in
  let rand seed =
    Prbp.Graphs.Random_dag.make ~seed ~max_in_degree:2 ~layers:3 ~width:3 ()
  in
  let solve game r dag =
    {
      body =
        Wire.encode_request
          (Wire.request ~want_strategy:true ~kind:Wire.Solve ~game ~r dag);
      path = "/v1/solve";
      dag;
      game;
      r;
    }
  in
  let bracket game r dag =
    {
      body =
        Wire.encode_request
          (Wire.request ~want_strategy:true ~kind:Wire.Bracket ~game ~r dag);
      path = "/v1/bracket";
      dag;
      game;
      r;
    }
  in
  (* RBP items keep r above the feasibility threshold (max in-degree
     + 1); PRBP has no such floor thanks to partial computations *)
  [
    solve Wire.Rbp 3 diamond;
    solve Wire.Prbp 2 diamond;
    solve Wire.Rbp 2 chain;
    solve Wire.Prbp 2 chain;
    solve Wire.Rbp 3 tree;
    solve Wire.Prbp 3 tree;
    solve Wire.Prbp 3 (rand 1);
    solve Wire.Rbp 3 (rand 2);
    bracket Wire.Rbp 3 diamond;
    bracket Wire.Prbp 2 tree;
    bracket Wire.Prbp 3 (rand 3);
    bracket Wire.Rbp 4 (rand 4);
  ]

(* ------------------------------------------------------------------ *)
(* Minimal HTTP client (connection: close per request) *)

let read_all fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 8192 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

type reply = { status : int; cache : string option; body : string }

let parse_reply raw =
  let rec find_sep i =
    if i + 4 > String.length raw then None
    else if String.sub raw i 4 = "\r\n\r\n" then Some i
    else find_sep (i + 1)
  in
  match find_sep 0 with
  | None -> None
  | Some i -> (
      let head = String.sub raw 0 i in
      let body = String.sub raw (i + 4) (String.length raw - i - 4) in
      match String.split_on_char '\n' head with
      | status_line :: header_lines -> (
          match String.split_on_char ' ' (String.trim status_line) with
          | _ :: code :: _ ->
              Option.map
                (fun status ->
                  let cache =
                    List.find_map
                      (fun line ->
                        match String.index_opt line ':' with
                        | Some j
                          when String.lowercase_ascii
                                 (String.trim (String.sub line 0 j))
                               = "x-prbpd-cache" ->
                            Some
                              (String.trim
                                 (String.sub line (j + 1)
                                    (String.length line - j - 1)))
                        | _ -> None)
                      header_lines
                  in
                  { status; cache; body })
                (int_of_string_opt code)
          | _ -> None)
      | [] -> None)

let post item =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let raw =
        Printf.sprintf
          "POST %s HTTP/1.1\r\nHost: bench\r\nContent-Length: %d\r\n\r\n%s"
          item.path
          (String.length item.body)
          item.body
      in
      let _ = Unix.write_substring fd raw 0 (String.length raw) in
      parse_reply (read_all fd))

let get path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let raw = Printf.sprintf "GET %s HTTP/1.1\r\nHost: bench\r\n\r\n" path in
      let _ = Unix.write_substring fd raw 0 (String.length raw) in
      parse_reply (read_all fd))

(* ------------------------------------------------------------------ *)
(* Certificate spot check: replay a served strategy through the
   literal checker and compare with the claimed upper bound. *)

let replay_cost item strategy =
  match strategy with
  | Wire.Rbp_strategy moves ->
      Result.to_option
        (Prbp.Rbp.check (Prbp.Rbp.config ~one_shot:true ~r:item.r ()) item.dag
           moves)
  | Wire.Prbp_strategy moves ->
      Result.to_option
        (Prbp.Prbp_game.check
           (Prbp.Prbp_game.config ~one_shot:true ~r:item.r ())
           item.dag moves)
  | Wire.Multi_rbp_strategy (p, moves) ->
      Result.to_option
        (Prbp.Multi.R.check (Prbp.Multi.config ~p ~r:item.r ()) item.dag moves)
  | Wire.Multi_prbp_strategy (p, moves) ->
      Result.to_option
        (Prbp.Multi.P.check (Prbp.Multi.config ~p ~r:item.r ()) item.dag moves)

let verify_reply item reply =
  if item.path = "/v1/solve" then
    match Wire.decode_outcome reply.body with
    | Error _ -> false
    | Ok o -> (
        match (o.Wire.strategy, o.Wire.upper) with
        | Some s, Some u -> replay_cost item s = Some u
        | None, _ ->
            (* legitimately strategy-less: Unsolvable, or Bounded with
               no incumbent found yet *)
            o.Wire.status <> `Optimal
        | _, None -> false)
  else
    match Wire.decode_bracket reply.body with
    | Error _ -> false
    | Ok b -> (
        match b.Wire.strategy with
        | Some s -> replay_cost item s = Some b.Wire.upper
        | None -> false)

(* ------------------------------------------------------------------ *)
(* One client domain's share of the load *)

type tally = {
  latencies : float list;
  hits : int;
  misses : int;
  errors : int;
  verified : int;
  verify_failures : int;
}

let run_client ~items ~offset ~n () =
  let k = Array.length items in
  let latencies = ref [] in
  let hits = ref 0 and misses = ref 0 and errors = ref 0 in
  let verified = ref 0 and verify_failures = ref 0 in
  for i = 0 to n - 1 do
    let item = items.((offset + i) mod k) in
    let t0 = Unix.gettimeofday () in
    (match post item with
    | None -> incr errors
    | Some reply when reply.status <> 200 -> incr errors
    | Some reply -> (
        latencies := (Unix.gettimeofday () -. t0) :: !latencies;
        (match reply.cache with
        | Some "hit" -> incr hits
        | Some "miss" -> incr misses
        | _ -> ());
        (* spot-check every 25th served certificate end to end *)
        if i mod 25 = 0 then
          if verify_reply item reply then incr verified
          else incr verify_failures));
    ()
  done;
  {
    latencies = !latencies;
    hits = !hits;
    misses = !misses;
    errors = !errors;
    verified = !verified;
    verify_failures = !verify_failures;
  }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1))))

(* ------------------------------------------------------------------ *)
(* BENCH_solver.json: replace (or insert) the single-line "serve"
   field, leaving every other line untouched. *)

let patch_bench_file ppf json =
  let path = "BENCH_solver.json" in
  if not (Sys.file_exists path) then
    Format.fprintf ppf "serve: no %s to patch (run --perf first)@." path
  else begin
    let ic = open_in_bin path in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let lines = String.split_on_char '\n' contents in
    let serve_line = Printf.sprintf "  \"serve\": %s," json in
    let is_serve l =
      String.length l >= 10 && String.sub l 0 10 = "  \"serve\":"
    in
    let patched =
      if List.exists is_serve lines then
        List.map (fun l -> if is_serve l then serve_line else l) lines
      else
        (* older file: insert after the schema line *)
        List.concat_map
          (fun l ->
            let is_schema =
              String.length l >= 11 && String.sub l 0 11 = "  \"schema\":"
            in
            if is_schema then [ l; serve_line ] else [ l ])
          lines
    in
    let oc = open_out path in
    output_string oc (String.concat "\n" patched);
    close_out oc;
    Format.fprintf ppf "patched \"serve\" into %s@." path
  end

(* ------------------------------------------------------------------ *)

let run ppf =
  Format.fprintf ppf "@.=== SERVE — prbpd load generator ===@.@.";
  let cfg =
    {
      Serve.Server.default_config with
      addr = Serve.Server.Tcp ("127.0.0.1", port);
      workers = max 2 (min 4 (Domain.recommended_domain_count () - 1));
      queue = 256;
      cache_capacity = 512;
      max_deadline_ms = 5_000;
    }
  in
  let stop = Atomic.make false in
  let server = Domain.spawn (fun () -> Serve.Server.run ~stop cfg) in
  let items = Array.of_list (work_items ()) in
  (* wait for the listener with a /healthz round trip; the body is a
     versioned wire record, so a successful probe also proves we are
     talking to a schema-compatible daemon *)
  let rec ready tries =
    match get "/healthz" with
    | Some reply -> Some reply
    | None | (exception Unix.Unix_error _) ->
        if tries = 0 then None
        else begin
          Unix.sleepf 0.02;
          ready (tries - 1)
        end
  in
  let healthz_ok (reply : reply) =
    reply.status = 200
    &&
    match Wire.decode_healthz reply.body with
    | Ok h ->
        h.Wire.wire = Wire.version
        && h.Wire.bench = Wire.bench_schema
        && h.Wire.uptime_s >= 0.
    | Error _ -> false
  in
  let probe = ready 250 in
  if not (match probe with Some r -> healthz_ok r | None -> false) then begin
    Atomic.set stop true;
    ignore (Domain.join server);
    (match probe with
    | None -> Format.fprintf ppf "serve: daemon did not come up@."
    | Some r ->
        Format.fprintf ppf
          "serve: /healthz body failed the wire check (status %d): %s@."
          r.status r.body);
    1
  end
  else begin
    let per_client = total_requests / clients in
    let t0 = Unix.gettimeofday () in
    let tallies =
      Array.init clients (fun c ->
          Domain.spawn (run_client ~items ~offset:c ~n:per_client))
      |> Array.map Domain.join
    in
    let wall = Unix.gettimeofday () -. t0 in
    Atomic.set stop true;
    ignore (Domain.join server);
    let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
    let hits = sum (fun t -> t.hits) and misses = sum (fun t -> t.misses) in
    let errors = sum (fun t -> t.errors) in
    let verified = sum (fun t -> t.verified) in
    let verify_failures = sum (fun t -> t.verify_failures) in
    let latencies =
      Array.of_list (List.concat_map (fun t -> t.latencies) (Array.to_list tallies))
    in
    Array.sort compare latencies;
    let answered = Array.length latencies in
    let p50 = percentile latencies 0.50 *. 1e3 in
    let p99 = percentile latencies 0.99 *. 1e3 in
    let hit_ratio =
      if hits + misses = 0 then 0.
      else float_of_int hits /. float_of_int (hits + misses)
    in
    let rps = float_of_int answered /. (wall +. 1e-9) in
    let t =
      Prbp.Table.make
        ~header:
          [ "requests"; "errors"; "hit ratio"; "p50"; "p99"; "rps";
            "verified"; "bad certs" ]
    in
    Prbp.Table.add_rowf t "%d|%d|%.1f%%|%.2fms|%.2fms|%.0f|%d|%d" answered
      errors (100. *. hit_ratio) p50 p99 rps verified verify_failures;
    Prbp.Table.print ppf t;
    let json =
      Printf.sprintf
        "{\"requests\": %d, \"errors\": %d, \"hit_ratio\": %.4f, \
         \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"throughput_rps\": %.1f, \
         \"verified\": %d, \"verify_failures\": %d, \"clients\": %d, \
         \"workers\": %d}"
        answered errors hit_ratio p50 p99 rps verified verify_failures
        clients cfg.Serve.Server.workers
    in
    patch_bench_file ppf json;
    (* the acceptance gates: the mix must sustain the load, hit the
       cache on the repeated-DAG mix, and serve only valid certificates *)
    if errors > 0 || verify_failures > 0 then 1
    else if answered < 1000 then begin
      Format.fprintf ppf "serve: only %d requests answered@." answered;
      1
    end
    else if hit_ratio < 0.9 then begin
      Format.fprintf ppf "serve: hit ratio %.1f%% below 90%%@."
        (100. *. hit_ratio);
      1
    end
    else 0
  end

(* Experiments E16–E20: Theorem 7.1 level gadgets and the Appendix-B
   model variants. *)

module Dag = Prbp.Dag
module E = Prbp.Experiment
module T = Prbp.Table
module L = Prbp.Graphs.Levels71

let rcfg ?(one_shot = true) ?(sliding = false) ?(no_delete = false) r =
  Prbp.Rbp.config ~one_shot ~sliding ~no_delete ~r ()

let pcfg r = Prbp.Prbp_game.config ~r ()

let e16 =
  E.make ~id:"E16" ~paper:"Theorem 7.1 / Appendix A.5 / Figure 5"
    ~claim:
      "The level-gadget towers adjusted with auxiliary levels leave the RBP \
       optimum unchanged while enforcing PRBP precedence (the key \
       ingredient of the n^(1-ε) inapproximability)"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "tower sizes"; "plain nodes"; "aux nodes"; "OPT_RBP plain";
              "OPT_RBP aux"; "equal" ]
      in
      let ok = ref true in
      List.iter
        (fun (sizes, r) ->
          let plain = L.make ~aux:false ~sizes:[ sizes ] ~cross:[] () in
          let auxd = L.make ~aux:true ~sizes:[ sizes ] ~cross:[] () in
          let cp = Solve_util.rbp_opt (rcfg r) plain.L.dag in
          let ca = Solve_util.rbp_opt (rcfg r) auxd.L.dag in
          T.add_rowf t "%s|%d|%d|%d|%d|%b"
            (String.concat "," (List.map string_of_int sizes))
            (Dag.n_nodes plain.L.dag) (Dag.n_nodes auxd.L.dag) cp ca (cp = ca);
          if cp <> ca then ok := false)
        [ ([ 2; 2 ], 4); ([ 3; 2 ], 5); ([ 2; 1 ], 4); ([ 3; 3 ], 5) ];
      T.print ppf t;
      (* the PRBP precedence mechanism: cross edges land on the aux
         level, so the target level is unreachable before the source
         level completes *)
      let two =
        L.make ~aux:true ~sizes:[ [ 2; 2 ]; [ 2; 2 ] ]
          ~cross:[ (0, 1, 1, 1) ]
          ()
      in
      let src = L.original_level two.L.towers.(0) 1 in
      let dst = L.original_level two.L.towers.(1) 1 in
      let direct = Dag.has_edge two.L.dag src.(0) dst.(0) in
      let reach = Prbp.Reach.descendants two.L.dag src.(0) in
      let reaches = Prbp.Bitset.mem reach dst.(0) in
      Format.fprintf ppf
        "cross-tower edges land on the auxiliary level (direct edge to the \
         target level: %b; precedence still enforced through it: %b)@."
        direct reaches;
      if direct || not reaches then ok := false;
      (* shrink lock-down: surplus nodes feed (l-l'+2) aux level ends *)
      let shrink = L.make ~aux:true ~sizes:[ [ 4; 2 ] ] ~cross:[] () in
      let tw = shrink.L.towers.(0) in
      let n_aux =
        Array.fold_left (fun a o -> if o then a else a + 1) 0 tw.L.original
      in
      Format.fprintf ppf
        "a 4→2 shrink inserts %d auxiliary levels (1 + (4-2+2) + 1 top), \
         locking down more than l-l' pebbles as required by A.5@."
        n_aux;
      if n_aux <> 6 then ok := false;
      !ok)

let e17 =
  E.make ~id:"E17" ~paper:"Appendix B.1 (re-computation)"
    ~claim:
      "With re-computation OPT_RBP drops to 2 on Figure 1; the z-layer \
       variant restores the PRBP advantage; PRBP is unaffected"
    (fun ppf (_ : E.ctx) ->
      let g, i = Prbp.Graphs.Fig1.full () in
      let t = T.make ~header:[ "model"; "DAG"; "cost" ] in
      let one_shot = Solve_util.rbp_opt (rcfg 4) g in
      let multi = Solve_util.rbp_opt (rcfg ~one_shot:false 4) g in
      let prbp = Solve_util.prbp_opt (pcfg 4) g in
      (* z-layer variant *)
      let z1 = 10 and z2 = 11 in
      let gz =
        Dag.make ~n:12
          [
            (i.Prbp.Graphs.Fig1.u0, z1); (i.u0, z2); (z1, i.u1); (z2, i.u1);
            (z1, i.u2); (z2, i.u2); (i.u1, i.w1); (i.u1, i.w2); (i.u1, i.w4);
            (i.w1, i.w3); (i.w2, i.w3); (i.w3, i.w4); (i.w4, i.v1);
            (i.w4, i.v2); (i.u2, i.v1); (i.u2, i.v2); (i.v1, i.v0);
            (i.v2, i.v0);
          ]
      in
      let multi_z = Solve_util.rbp_opt (rcfg ~one_shot:false 4) gz in
      let prbp_z = Solve_util.prbp_opt (pcfg 4) gz in
      T.add_rowf t "one-shot RBP|fig1|%d" one_shot;
      T.add_rowf t "RBP + recomputation|fig1|%d" multi;
      T.add_rowf t "PRBP|fig1|%d" prbp;
      T.add_rowf t "RBP + recomputation|fig1+z-layer|%d" multi_z;
      T.add_rowf t "PRBP|fig1+z-layer|%d" prbp_z;
      T.print ppf t;
      one_shot = 3 && multi = 2 && prbp = 2 && multi_z = 3 && prbp_z = 2)

let e18 =
  E.make ~id:"E18" ~paper:"Appendix B.2 (sliding pebbles)"
    ~claim:
      "Sliding closes the Figure-1 gap (w0 restores it); on binary trees \
       sliding matches PRBP, on k-ary trees with k >= 3 PRBP still wins"
    (fun ppf (_ : E.ctx) ->
      let t = T.make ~header:[ "DAG"; "r"; "sliding RBP"; "PRBP"; "verdict" ] in
      let ok = ref true in
      let g, i = Prbp.Graphs.Fig1.full () in
      let s_fig1 = Solve_util.rbp_opt (rcfg ~sliding:true 4) g in
      let p_fig1 = Solve_util.prbp_opt (pcfg 4) g in
      T.add_rowf t "fig1|4|%d|%d|%s" s_fig1 p_fig1
        (if s_fig1 = p_fig1 then "tie" else "prbp");
      if s_fig1 <> 2 || p_fig1 <> 2 then ok := false;
      (* w0 fix *)
      let w0 = 10 in
      let gw =
        Dag.make ~n:11
          [
            (i.Prbp.Graphs.Fig1.u0, i.u1); (i.u0, i.u2); (i.u1, i.w1);
            (i.u1, i.w2); (i.u1, i.w4); (i.w1, i.w3); (i.w2, i.w3);
            (i.w3, i.w4); (i.w4, i.v1); (i.w4, i.v2); (i.u2, i.v1);
            (i.u2, i.v2); (i.v1, i.v0); (i.v2, i.v0); (i.u1, w0); (w0, i.w3);
          ]
      in
      let s_w0 = Solve_util.rbp_opt (rcfg ~sliding:true 4) gw in
      let p_w0 = Solve_util.prbp_opt (pcfg 4) gw in
      T.add_rowf t "fig1 + w0|4|%d|%d|%s" s_w0 p_w0
        (if p_w0 < s_w0 then "prbp" else "tie");
      if s_w0 <> 3 || p_w0 <> 2 then ok := false;
      (* trees *)
      let t2 = Prbp.Graphs.Tree.make ~k:2 ~depth:3 in
      let s_t2 =
        Solve_util.rbp_opt (rcfg ~sliding:true 3) t2.Prbp.Graphs.Tree.dag
      in
      let p_t2 = Prbp.Graphs.Tree.prbp_opt ~k:2 ~depth:3 in
      T.add_rowf t "tree(2,3)|3|%d|%d|%s" s_t2 p_t2
        (if s_t2 = p_t2 then "tie" else "prbp");
      if s_t2 <> p_t2 then ok := false;
      let t3 = Prbp.Graphs.Tree.make ~k:3 ~depth:2 in
      let s_t3 =
        Solve_util.rbp_opt (rcfg ~sliding:true 4) t3.Prbp.Graphs.Tree.dag
      in
      let p_t3 =
        Solve_util.prbp_opt (pcfg 4) t3.Prbp.Graphs.Tree.dag
      in
      T.add_rowf t "tree(3,2)|4|%d|%d|%s" s_t3 p_t3
        (if p_t3 < s_t3 then "prbp" else "tie");
      if p_t3 >= s_t3 then ok := false;
      T.print ppf t;
      !ok)

let e19 =
  E.make ~id:"E19" ~paper:"Appendix B.3 (computation costs)"
    ~claim:
      "Per-edge ε gives ε·|E| total compute in PRBP vs ε·(non-sources) in \
       RBP; the in-degree-normalized mode restores comparable totals"
    (fun ppf (_ : E.ctx) ->
      let eps = 0.01 in
      let t =
        T.make
          ~header:
            [ "DAG"; "RBP total"; "PRBP per-edge"; "PRBP normalized";
              "normalized = RBP" ]
      in
      let ok = ref true in
      let try_one name g =
        let r = max 2 (Dag.max_in_degree g + 1) in
        let rmoves =
          Prbp.Rbp.normalize (rcfg r) g (Prbp.Heuristic.rbp ~r g)
        in
        let rbp_total =
          Prbp.Rbp.total_cost
            (Prbp.Rbp.run_exn
               (Prbp.Rbp.config ~r ~compute_cost:eps ())
               g rmoves)
        in
        let pmoves = Prbp.Move.rbp_to_prbp g rmoves in
        let per_edge =
          Prbp.Prbp_game.total_cost
            (Prbp.Prbp_game.run_exn
               (Prbp.Prbp_game.config ~r ~compute_cost:eps ())
               g pmoves)
        in
        let normalized =
          Prbp.Prbp_game.total_cost
            (Prbp.Prbp_game.run_exn
               (Prbp.Prbp_game.config ~r ~compute_cost:eps
                  ~normalized_cost:true ())
               g pmoves)
        in
        let eq = abs_float (normalized -. rbp_total) < 1e-9 in
        T.add_rowf t "%s|%.2f|%.2f|%.2f|%b" name rbp_total per_edge normalized
          eq;
        if not eq then ok := false;
        if Dag.max_in_degree g > 1 && per_edge <= rbp_total then ok := false
      in
      try_one "fig1" (fst (Prbp.Graphs.Fig1.full ()));
      try_one "tree(3,3)" (Prbp.Graphs.Tree.make ~k:3 ~depth:3).Prbp.Graphs.Tree.dag;
      try_one "fft(16)" (Prbp.Graphs.Fft.make ~m:16).Prbp.Graphs.Fft.dag;
      try_one "matvec(4)" (Prbp.Graphs.Matvec.make ~m:4).Prbp.Graphs.Matvec.dag;
      T.print ppf t;
      !ok)

let e20 =
  E.make ~id:"E20" ~paper:"Appendix B.4 (no deletion)"
    ~claim:
      "Without deletions every value is saved except the <= r final reds: \
       OPT >= n − r, and costs dominate the unrestricted game"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "DAG"; "r"; "no-delete OPT"; "n - r"; "unrestricted OPT" ]
      in
      let ok = ref true in
      let try_one name g r =
        let nd = Solve_util.rbp_opt (rcfg ~no_delete:true r) g in
        let free = Solve_util.rbp_opt (rcfg r) g in
        T.add_rowf t "%s|%d|%d|%d|%d" name r nd (Dag.n_nodes g - r) free;
        if nd < Dag.n_nodes g - r || nd < free then ok := false
      in
      try_one "diamond" (Prbp.Graphs.Basic.diamond ()) 3;
      try_one "fig1" (fst (Prbp.Graphs.Fig1.full ())) 4;
      try_one "path(6)" (Prbp.Graphs.Basic.path 6) 2;
      try_one "tree(2,2)" (Prbp.Graphs.Tree.make ~k:2 ~depth:2).Prbp.Graphs.Tree.dag 3;
      T.print ppf t;
      !ok)

let all = [ e16; e17; e18; e19; e20 ]

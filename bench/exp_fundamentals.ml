(* Experiments E01–E08: Section 4 (fundamental properties of PRBP). *)

module Dag = Prbp.Dag
module E = Prbp.Experiment
module T = Prbp.Table

let rcfg r = Prbp.Rbp.config ~r ()

let pcfg r = Prbp.Prbp_game.config ~r ()

let rbp_check ~r g moves =
  match Prbp.Rbp.check (rcfg r) g moves with
  | Ok c -> c
  | Error e -> failwith e

let prbp_check ~r g moves =
  match Prbp.Prbp_game.check (pcfg r) g moves with
  | Ok c -> c
  | Error e -> failwith e

let e01 =
  E.make ~id:"E01" ~paper:"Proposition 4.2 / Figure 1 / Appendix A.1"
    ~claim:"On the Figure-1 DAG with r=4: OPT_RBP = 3 and OPT_PRBP = 2"
    (fun ppf (_ : E.ctx) ->
      let g, ids = Prbp.Graphs.Fig1.full () in
      let opt_r = Solve_util.rbp_opt (rcfg 4) g in
      let opt_p = Solve_util.prbp_opt (pcfg 4) g in
      let strat_r = rbp_check ~r:4 g (Prbp.Strategies.fig1_rbp ids) in
      let strat_p = prbp_check ~r:4 g (Prbp.Strategies.fig1_prbp ids) in
      let t = T.make ~header:[ "quantity"; "paper"; "measured" ] in
      T.add_rowf t "OPT_RBP (exhaustive)|3|%d" opt_r;
      T.add_rowf t "OPT_PRBP (exhaustive)|2|%d" opt_p;
      T.add_rowf t "A.1 RBP strategy cost|3|%d" strat_r;
      T.add_rowf t "A.1 PRBP strategy cost|2|%d" strat_p;
      T.print ppf t;
      opt_r = 3 && opt_p = 2 && strat_r = 3 && strat_p = 2)

let e02 =
  E.make ~id:"E02" ~paper:"Proposition 4.1"
    ~claim:
      "Any RBP strategy translates to a PRBP strategy of the same I/O cost \
       (so OPT_PRBP <= OPT_RBP)"
    (fun ppf (_ : E.ctx) ->
      let t = T.make ~header:[ "DAG"; "r"; "RBP cost"; "translated PRBP" ] in
      let ok = ref true in
      let try_one name g =
        let r = max 2 (Dag.max_in_degree g + 1) in
        let moves =
          Prbp.Rbp.normalize (rcfg r) g (Prbp.Heuristic.rbp ~r g)
        in
        let c = rbp_check ~r g moves in
        let c' = prbp_check ~r g (Prbp.Move.rbp_to_prbp g moves) in
        T.add_rowf t "%s|%d|%d|%d" name r c c';
        if c <> c' then ok := false
      in
      try_one "fig1" (fst (Prbp.Graphs.Fig1.full ()));
      try_one "pyramid(4)" (Prbp.Graphs.Basic.pyramid 4);
      try_one "grid 4x4" (Prbp.Graphs.Basic.grid 4 4);
      try_one "fft(16)" (Prbp.Graphs.Fft.make ~m:16).Prbp.Graphs.Fft.dag;
      try_one "tree(2,5)"
        (Prbp.Graphs.Tree.make ~k:2 ~depth:5).Prbp.Graphs.Tree.dag;
      List.iteri
        (fun i seed ->
          try_one
            (Printf.sprintf "random#%d" i)
            (Prbp.Graphs.Random_dag.make ~seed ~layers:6 ~width:5 ()))
        [ 11; 22; 33 ];
      T.print ppf t;
      !ok)

let e03 =
  E.make ~id:"E03" ~paper:"Proposition 4.3"
    ~claim:
      "Matrix-vector multiplication (m>=3, m+3<=r<=2m): OPT_PRBP = m^2+2m \
       (trivial) < m^2+3m-1 <= OPT_RBP"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "m"; "r"; "PRBP streamed"; "= trivial?"; "RBP bound";
              "RBP heuristic" ]
      in
      let ok = ref true in
      List.iter
        (fun m ->
          let mv = Prbp.Graphs.Matvec.make ~m in
          let g = mv.Prbp.Graphs.Matvec.dag in
          let r = m + 3 in
          let c = prbp_check ~r g (Prbp.Strategies.matvec_prbp mv) in
          let trivial = Dag.trivial_cost g in
          let bound = Prbp.Graphs.Matvec.rbp_lower ~m in
          let heur = Prbp.Heuristic.rbp_cost ~r g in
          T.add_rowf t "%d|%d|%d|%b|%d|%d" m r c (c = trivial) bound heur;
          if not (c = trivial && c < bound && heur >= bound) then ok := false)
        [ 3; 4; 5; 6; 8; 10 ];
      T.print ppf t;
      Format.fprintf ppf
        "(the heuristic upper bound for RBP respects the proven lower bound \
         everywhere)@.";
      !ok)

let e04 =
  E.make ~id:"E04" ~paper:"Proposition 4.4 / Figure 2 left"
    ~claim:
      "Zipper gadget at r = d+2: RBP pays ~d per chain node, PRBP ~2 per \
       second chain node; PRBP wins for d >= 3"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make ~header:[ "d"; "len"; "RBP strategy"; "PRBP strategy"; "gap" ]
      in
      let ok = ref true in
      List.iter
        (fun (d, len) ->
          let z = Prbp.Graphs.Zipper.make ~d ~len in
          let g = z.Prbp.Graphs.Zipper.dag in
          let cr = rbp_check ~r:(d + 2) g (Prbp.Strategies.zipper_rbp z) in
          let cp = prbp_check ~r:(d + 2) g (Prbp.Strategies.zipper_prbp z) in
          T.add_rowf t "%d|%d|%d|%d|%.2fx" d len cr cp
            (float_of_int cr /. float_of_int cp);
          if d >= 3 && cp >= cr then ok := false;
          if cr <> Prbp.Strategies.zipper_rbp_cost ~d ~len then ok := false;
          if cp <> Prbp.Strategies.zipper_prbp_cost ~d ~len then ok := false)
        [ (3, 8); (4, 12); (5, 16); (6, 24); (8, 32) ];
      T.print ppf t;
      !ok)

let e05 =
  E.make ~id:"E05" ~paper:"Proposition 4.5 / Appendix A.2"
    ~claim:
      "Binary trees at r=3: OPT_RBP = 2^(d+1)-1 and OPT_PRBP = \
       2^d+2^(d-1)-1; strategies match the closed forms, exhaustive \
       search confirms d=3"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make
          ~header:[ "depth"; "RBP"; "formula"; "PRBP"; "formula"; "exact?" ]
      in
      let ok = ref true in
      List.iter
        (fun depth ->
          let tr = Prbp.Graphs.Tree.make ~k:2 ~depth in
          let g = tr.Prbp.Graphs.Tree.dag in
          let cr = rbp_check ~r:3 g (Prbp.Strategies.tree_rbp tr) in
          let cp = prbp_check ~r:3 g (Prbp.Strategies.tree_prbp tr) in
          let fr = Prbp.Graphs.Tree.rbp_opt ~k:2 ~depth in
          let fp = Prbp.Graphs.Tree.prbp_opt ~k:2 ~depth in
          let exact =
            if depth <= 3 then begin
              let er = Solve_util.rbp_opt (rcfg 3) g in
              let ep = Solve_util.prbp_opt (pcfg 3) g in
              if er <> fr || ep <> fp then ok := false;
              Printf.sprintf "rbp=%d prbp=%d" er ep
            end
            else "-"
          in
          T.add_rowf t "%d|%d|%d|%d|%d|%s" depth cr fr cp fp exact;
          if cr <> fr || cp <> fp then ok := false)
        [ 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
      T.print ppf t;
      !ok)

let e06 =
  E.make ~id:"E06" ~paper:"Appendix A.2 (k-ary trees)"
    ~claim:
      "k-ary trees at r=k+1: OPT_RBP = k^d + 2k^(d-1) - 1, OPT_PRBP = k^d + \
       2k^(d-k) - 1 (almost a k^(k-1) factor on non-trivial I/O)"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "k"; "d"; "RBP"; "formula"; "PRBP"; "formula";
              "non-trivial ratio" ]
      in
      let ok = ref true in
      List.iter
        (fun (k, depth) ->
          let tr = Prbp.Graphs.Tree.make ~k ~depth in
          let g = tr.Prbp.Graphs.Tree.dag in
          let cr = rbp_check ~r:(k + 1) g (Prbp.Strategies.tree_rbp tr) in
          let cp = prbp_check ~r:(k + 1) g (Prbp.Strategies.tree_prbp tr) in
          let fr = Prbp.Graphs.Tree.rbp_opt ~k ~depth in
          let fp = Prbp.Graphs.Tree.prbp_opt ~k ~depth in
          let trivial = Dag.trivial_cost g in
          let ratio =
            if cp > trivial then
              Printf.sprintf "%.1f"
                (float_of_int (cr - trivial) /. float_of_int (cp - trivial))
            else "inf"
          in
          T.add_rowf t "%d|%d|%d|%d|%d|%d|%s" k depth cr fr cp fp ratio;
          if cr <> fr || cp <> fp then ok := false)
        [ (2, 4); (2, 8); (3, 4); (3, 6); (4, 5); (5, 6) ];
      T.print ppf t;
      !ok)

let e07 =
  E.make ~id:"E07" ~paper:"Proposition 4.6 / Figure 2 right"
    ~claim:
      "Pebble-collection gadget: with d+2 pebbles only trivial cost; any \
       strategy capped below d+2 pebbles pays >= len/(2d) — in PRBP too"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "d"; "len"; "full (r=d+2)"; "trivial"; "capped (r=d+1)";
              "bound len/2d" ]
      in
      let ok = ref true in
      List.iter
        (fun (d, len) ->
          let c = Prbp.Graphs.Collect.make ~d ~len in
          let g = c.Prbp.Graphs.Collect.dag in
          let full = rbp_check ~r:(d + 2) g (Prbp.Strategies.collect_full c) in
          let capped =
            prbp_check ~r:(d + 1) g (Prbp.Strategies.collect_capped c)
          in
          let lb = Prbp.Graphs.Collect.lower_bound_capped c in
          T.add_rowf t "%d|%d|%d|%d|%d|%d" d len full (Dag.trivial_cost g)
            capped lb;
          if full <> Dag.trivial_cost g || capped < lb then ok := false)
        [ (3, 30); (4, 48); (5, 100); (6, 120); (8, 240) ];
      T.print ppf t;
      Format.fprintf ppf
        "(the capped PRBP strategy sits between the bound and a small \
         constant times it)@.";
      !ok)

let e08 =
  E.make ~id:"E08" ~paper:"Proposition 4.7"
    ~claim:
      "Chained Figure-1 gadgets (Δin=2, Δout=3, r=4): OPT_PRBP = 2 always, \
       OPT_RBP = Θ(n)"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "copies"; "nodes"; "PRBP strategy"; "exact PRBP"; "RBP strategy";
              "exact RBP" ]
      in
      let ok = ref true in
      List.iter
        (fun copies ->
          let g = Prbp.Graphs.Fig1.chained ~copies in
          let cp =
            prbp_check ~r:4 g (Prbp.Strategies.fig1_chained_prbp ~copies)
          in
          let cr =
            rbp_check ~r:4 g (Prbp.Strategies.fig1_chained_rbp ~copies)
          in
          let small = copies <= 4 in
          let ep = if small then Solve_util.prbp_opt (pcfg 4) g else -1 in
          let er = if small then Solve_util.rbp_opt (rcfg 4) g else -1 in
          T.add_rowf t "%d|%d|%d|%s|%d|%s" copies (Dag.n_nodes g) cp
            (if small then string_of_int ep else "-")
            cr
            (if small then string_of_int er else "-");
          if cp <> 2 then ok := false;
          if cr <> (2 * copies) + 1 then ok := false;
          if small && (ep <> 2 || er <> cr) then ok := false)
        [ 1; 2; 3; 4; 10; 50; 200 ];
      T.print ppf t;
      Format.fprintf ppf
        "(exact search certifies the strategies optimal up to 4 copies; the \
         RBP cost grows as 2·copies+1 = Θ(n) while PRBP stays at 2)@.";
      !ok)

let all = [ e01; e02; e03; e04; e05; e06; e07; e08 ]

(* Experiments E13–E15: Section 6.3 — lower bounds for FFT, matrix
   multiplication and attention, with matching-shape strategies. *)

module Dag = Prbp.Dag
module E = Prbp.Experiment
module T = Prbp.Table

let e13 =
  E.make ~id:"E13" ~paper:"Theorem 6.9 / Figure 4"
    ~claim:
      "m-point FFT: OPT_PRBP = Ω(m·log m / log r); the blocked strategy \
       stays within a bounded constant of the bound across the sweep"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "m"; "r"; "strategy I/O"; "bound"; "ratio"; "trivial" ]
      in
      let ok = ref true in
      let ratios = ref [] in
      List.iter
        (fun (m, r) ->
          let f = Prbp.Graphs.Fft.make ~m in
          let g = f.Prbp.Graphs.Fft.dag in
          let moves = Prbp.Strategies.fft_blocked ~r f in
          let cost =
            match Prbp.Rbp.check (Prbp.Rbp.config ~r ()) g moves with
            | Ok c -> c
            | Error e -> failwith e
          in
          let bound = Prbp.Graphs.Fft.lower_bound f ~r in
          let ratio = float_of_int cost /. bound in
          ratios := ratio :: !ratios;
          T.add_rowf t "%d|%d|%d|%.1f|%.2f|%d" m r cost bound ratio
            (Dag.trivial_cost g);
          if cost < int_of_float bound then ok := false)
        [
          (16, 6); (32, 6); (64, 6); (128, 6); (256, 6); (512, 6); (1024, 6);
          (64, 10); (256, 10); (1024, 10); (256, 34); (1024, 34); (4096, 34);
        ];
      T.print ppf t;
      (* the r = 6 sweep as a picture: measured cost tracks the bound *)
      let r6 = [ 16; 32; 64; 128; 256; 512; 1024 ] in
      let series glyph label f =
        {
          Prbp.Chart.label;
          glyph;
          points =
            List.map
              (fun m ->
                let fft = Prbp.Graphs.Fft.make ~m in
                (float_of_int m, f fft))
              r6;
        }
      in
      let measured =
        series '#' "blocked strategy (r=6)" (fun fft ->
            let g = fft.Prbp.Graphs.Fft.dag in
            match
              Prbp.Rbp.check (Prbp.Rbp.config ~r:6 ()) g
                (Prbp.Strategies.fft_blocked ~r:6 fft)
            with
            | Ok c -> float_of_int c
            | Error e -> failwith e)
      in
      let bound =
        series 'o' "lower bound (r=6)" (fun fft ->
            Prbp.Graphs.Fft.lower_bound fft ~r:6)
      in
      Format.fprintf ppf "@.%s@."
        (Prbp.Chart.loglog ~x_label:"m" ~y_label:"I/O" [ bound; measured ]);
      let mx = List.fold_left max 0. !ratios
      and mn = List.fold_left min infinity !ratios in
      Format.fprintf ppf
        "ratio strategy/bound stays within [%.2f, %.2f] across two orders of \
         magnitude of m and three cache sizes — the Θ(m log m / log r) shape \
         holds for PRBP@."
        mn mx;
      !ok && mx /. mn < 6.)

let e14 =
  E.make ~id:"E14" ~paper:"Theorem 6.10"
    ~claim:
      "Matrix multiplication m1·m2·m3: OPT_PRBP = Ω(#products/√r); the \
       tiled outer-product PRBP strategy follows the 1/√r shape"
    (fun ppf (_ : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "m1xm2xm3"; "r"; "tiles"; "strategy I/O"; "bound";
              "normalized cost·√r/#prod" ]
      in
      let ok = ref true in
      let norms = ref [] in
      List.iter
        (fun (m, r) ->
          let mm = Prbp.Graphs.Matmul.make ~m1:m ~m2:m ~m3:m in
          let g = mm.Prbp.Graphs.Matmul.dag in
          let ti, tk, tj =
            Prbp.Strategies.matmul_tile_for ~r ~m1:m ~m2:m ~m3:m
          in
          let cost =
            match
              Prbp.Prbp_game.check
                (Prbp.Prbp_game.config ~r ())
                g
                (Prbp.Strategies.matmul_tiled ~ti ~tk ~tj mm)
            with
            | Ok c -> c
            | Error e -> failwith e
          in
          let bound = Prbp.Graphs.Matmul.lower_bound mm ~r in
          let norm =
            float_of_int cost
            *. sqrt (float_of_int r)
            /. float_of_int (m * m * m)
          in
          norms := norm :: !norms;
          T.add_rowf t "%dx%dx%d|%d|%d,%d,%d|%d|%.1f|%.2f" m m m r ti tk tj
            cost bound norm;
          if float_of_int cost < bound then ok := false)
        [
          (4, 8); (6, 8); (8, 8); (10, 8); (12, 8);
          (8, 14); (12, 14); (16, 14);
          (8, 28); (12, 28); (16, 28); (20, 28);
        ];
      T.print ppf t;
      let mx = List.fold_left max 0. !norms
      and mn = List.fold_left min infinity !norms in
      Format.fprintf ppf
        "cost·√r/#products stays within [%.2f, %.2f]: the Θ(#prod/√r) shape \
         holds (paper reports the same magnitude is optimal; constants are \
         not matched, as expected)@."
        mn mx;
      !ok && mx /. mn < 8.)

let e15 =
  E.make ~id:"E15" ~paper:"Theorem 6.11"
    ~claim:
      "Attention (Q·K^T, m×d): OPT_PRBP = Ω(min(m²d/√r, m²d²/r)); a tiled \
       strategy traces the large-cache m²d²/r regime past r = d²"
    (fun ppf (_ : E.ctx) ->
      let m = 16 and d = 4 in
      Format.fprintf ppf "m = %d, d = %d, d² = %d@.@." m d (d * d);
      let mm = Prbp.Graphs.Attention.qkt ~m ~d in
      let g = mm.Prbp.Graphs.Matmul.dag in
      let t =
        T.make
          ~header:
            [ "r"; "regime"; "strategy I/O"; "bound"; "cost·r/(m²d²)" ]
      in
      let ok = ref true in
      let large_norms = ref [] in
      List.iter
        (fun r ->
          let ti, tk, tj = Prbp.Strategies.attention_tiles ~r ~m ~d in
          let cost =
            match
              Prbp.Prbp_game.check
                (Prbp.Prbp_game.config ~r ())
                g
                (Prbp.Strategies.matmul_tiled ~ti ~tk ~tj mm)
            with
            | Ok c -> c
            | Error e -> failwith e
          in
          let bound = Prbp.Graphs.Attention.lower_bound ~m ~d ~r in
          let norm =
            float_of_int (cost * r) /. float_of_int (m * m * d * d)
          in
          if r >= 3 * d * d then large_norms := norm :: !large_norms;
          T.add_rowf t "%d|%s|%d|%.1f|%.2f" r
            (if r >= d * d then "large" else "small")
            cost bound norm;
          if float_of_int cost < bound then ok := false)
        [ 10; 13; 16; 24; 48; 64; 96; 128 ];
      T.print ppf t;
      let mx = List.fold_left max 0. !large_norms
      and mn = List.fold_left min infinity !large_norms in
      Format.fprintf ppf
        "in the large-cache regime cost·r/(m²d²) stays within [%.2f, %.2f]: \
         the m²d²/r shape of the Theorem 6.11 bound is matched by the tiled \
         strategy@."
        mn mx;
      !ok && mx /. mn < 8.)

let all = [ e13; e14; e15 ]

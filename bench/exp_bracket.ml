(* Experiments E31–E32: the certified-bracket subsystem (lib/bounds).

   E31 cross-checks brackets against the exact solvers on every small
   family and re-validates each embedded certificate independently;
   E32 exercises the subsystem at paper scale under a wall-clock
   budget, where exact search is out of reach. *)

module Dag = Prbp.Dag
module E = Prbp.Experiment
module T = Prbp.Table
module Bracket = Prbp.Bounds.Bracket
module Segment = Prbp.Bounds.Segment
module Lower = Prbp.Bounds.Lower

let pp_bracket b =
  if b.Bracket.tight then string_of_int b.Bracket.upper
  else Printf.sprintf "[%d,%d]" b.Bracket.lower.Lower.bound b.Bracket.upper

(* Re-validate every certificate a bracket carries, independently of
   the code that built it: the winning partition and the profile back
   through the exact Spart checkers, the winning strategy back through
   the literal rule verifier at exactly the reported cost. *)
let certs_ok g ~r (b : Bracket.t) =
  let part_ok =
    match b.Bracket.lower.Lower.witness with
    | Some seg -> Segment.validate g seg = Ok ()
    | None -> true
  in
  let profile_ok =
    match b.Bracket.profile with
    | Some seg -> Segment.validate g seg = Ok ()
    | None -> true
  in
  let moves_ok =
    match b.Bracket.moves with
    | Bracket.Rbp_moves mv -> Prbp.Verifier.R.check ~r g mv = Ok b.Bracket.upper
    | Bracket.Prbp_moves mv ->
        Prbp.Verifier.P.check ~r g mv = Ok b.Bracket.upper
  in
  part_ok && profile_ok && moves_ok

let e31 =
  E.make ~id:"E31" ~paper:"Theorems 5.4 / 6.5 / 6.7 as a certified portfolio"
    ~claim:
      "On every small family the bracket [lower, upper] contains the exact \
       optimum for both games; the winning partition and profile re-validate \
       through the exact Spart checkers and the winning strategy replays \
       through the literal verifier at exactly the reported cost"
    (fun ppf (ctx : E.ctx) ->
      let t =
        T.make
          ~header:[ "DAG"; "r"; "game"; "bracket"; "rule"; "OPT"; "contains"; "certs" ]
      in
      let ok = ref true in
      let one name g r game =
        let bracket =
          match game with
          | `Rbp -> Bracket.rbp ~budget:ctx.E.budget ~r g
          | `Prbp -> Bracket.prbp ~budget:ctx.E.budget ~r g
        in
        match bracket with
        | Error _ ->
            (* r below the game's feasibility threshold: nothing to
               bracket, and the exact solver agrees it is unsolvable *)
            ()
        | Ok b ->
            let opt =
              match game with
              | `Rbp ->
                  Solve_util.probe
                    (Prbp.Exact_rbp.solve ~budget:ctx.E.budget
                       (Prbp.Rbp.config ~r ()) g)
              | `Prbp ->
                  Solve_util.probe
                    (Prbp.Exact_prbp.solve ~budget:ctx.E.budget
                       (Prbp.Prbp_game.config ~r ()) g)
            in
            let contains, opt_s =
              match opt with
              | Solve_util.Cost c ->
                  (b.Bracket.lower.Lower.bound <= c && c <= b.Bracket.upper,
                   string_of_int c)
              | Solve_util.Infeasible -> (false, "-")
              | Solve_util.Truncated _ -> (true, "?")
            in
            let certs = certs_ok g ~r b in
            if not (contains && certs) then ok := false;
            T.add_rowf t "%s|%d|%s|%s|%s|%s|%b|%b" name r
              (Lower.game_label b.Bracket.game)
              (pp_bracket b) b.Bracket.lower.Lower.rule opt_s contains certs
      in
      let both name g rs =
        List.iter
          (fun r ->
            one name g r `Rbp;
            one name g r `Prbp)
          rs
      in
      both "fig1" (fst (Prbp.Graphs.Fig1.full ())) [ 3; 4 ];
      both "diamond" (Prbp.Graphs.Basic.diamond ()) [ 2; 3 ];
      both "pyramid(3)" (Prbp.Graphs.Basic.pyramid 3) [ 2; 3 ];
      both "tree(2,3)" (Prbp.Graphs.Tree.make ~k:2 ~depth:3).Prbp.Graphs.Tree.dag
        [ 3 ];
      both "fan_in(5)" (Prbp.Graphs.Basic.fan_in 5) [ 2; 6 ];
      both "horner(4)" (Prbp.Graphs.Basic.horner 4) [ 2; 3 ];
      both "zipper(2,3)"
        (Prbp.Graphs.Zipper.make ~d:2 ~len:3).Prbp.Graphs.Zipper.dag [ 3 ];
      both "random(1,4x3)"
        (Prbp.Graphs.Random_dag.make ~seed:1 ~layers:4 ~width:3 ())
        [ 3 ];
      T.print ppf t;
      Format.fprintf ppf
        "(brackets come from the polynomial portfolios, the optima from \
         exhaustive search — agreement here is what licenses trusting the \
         same brackets at scales the exact solvers cannot reach)@.";
      !ok)

let e32 =
  E.make ~id:"E32" ~paper:"Section 6.3 families at experiment scale"
    ~claim:
      "Under a 10-second budget the bracket subsystem produces finite \
       certified brackets at paper scale — FFT(128) with 1024 nodes for \
       both games, matmul 20^3 (9200 nodes) and attention QK^T (16,8) — \
       and on matmul the closed-form rule lifts the lower bound strictly \
       above the trivial source/sink count"
    ~budget:(Prbp.Solver.Budget.v ~max_millis:10_000 ())
    (fun ppf (ctx : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "family"; "game"; "r"; "n"; "m"; "trivial"; "bracket"; "rule";
              "method"; "time" ]
      in
      let ok = ref true in
      let matmul_beats_trivial = ref false in
      let fft_large_enough = ref false in
      let one family game g r =
        let bracket =
          match game with
          | `Rbp -> Bracket.rbp ~budget:ctx.E.budget ~r g
          | `Prbp -> Bracket.prbp ~budget:ctx.E.budget ~r g
        in
        match bracket with
        | Error e ->
            ok := false;
            Format.fprintf ppf "%s: bracket failed: %s@." family e
        | Ok b ->
            let lower = b.Bracket.lower.Lower.bound in
            (* finite and non-degenerate: a verified strategy exists and
               the certified bounds order correctly *)
            if not (lower <= b.Bracket.upper && b.Bracket.upper > 0) then
              ok := false;
            if family = "fft:128" && b.Bracket.n >= 1000 then
              fft_large_enough := true;
            if family = "matmul:20:20:20" && lower > Dag.trivial_cost g then
              matmul_beats_trivial := true;
            T.add_rowf t "%s|%s|%d|%d|%d|%d|%s|%s|%s|%.1fs" family
              (Lower.game_label b.Bracket.game)
              r b.Bracket.n b.Bracket.m (Dag.trivial_cost g) (pp_bracket b)
              b.Bracket.lower.Lower.rule
              (Prbp.Bounds.Upper.meth_label b.Bracket.meth)
              b.Bracket.elapsed_s
      in
      (* closed forms attach automatically from the DAGs' family tags *)
      let fft = (Prbp.Graphs.Fft.make ~m:128).Prbp.Graphs.Fft.dag in
      one "fft:128" `Rbp fft 6;
      one "fft:128" `Prbp fft 6;
      let mm = Prbp.Graphs.Matmul.make ~m1:20 ~m2:20 ~m3:20 in
      one "matmul:20:20:20" `Prbp mm.Prbp.Graphs.Matmul.dag 2;
      let qkt = Prbp.Graphs.Attention.qkt ~m:16 ~d:8 in
      one "attention-qkt:16:8" `Prbp qkt.Prbp.Graphs.Matmul.dag 4;
      T.print ppf t;
      if not !fft_large_enough then ok := false;
      if not !matmul_beats_trivial then ok := false;
      Format.fprintf ppf
        "(every strategy cost above was certified by independent replay \
         before being believed; on matmul the Theorem 6.10 closed form \
         beats the trivial bound, so the bracket is strictly better than \
         what counting sources and sinks gives)@.";
      !ok)

let e33 =
  E.make ~id:"E33" ~paper:"Interval width as the bracket quality metric"
    ~claim:
      "The banded (blocked) FFT schedules shrink the certified FFT(128) \
       r=6 bracket width by at least 2x against the row-by-row baseline \
       [256, 2263] under the same 10-second budget, with every \
       certificate re-validated; per-rule attribution shows which rule \
       set each side of the interval"
    ~budget:(Prbp.Solver.Budget.v ~max_millis:10_000 ())
    (fun ppf (ctx : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "family"; "game"; "bracket"; "width"; "lower rule";
              "upper rule"; "certs" ]
      in
      let ok = ref true in
      let baseline_width = 2263 - 256 in
      let fft = (Prbp.Graphs.Fft.make ~m:128).Prbp.Graphs.Fft.dag in
      let one game label =
        let bracket =
          match game with
          | `Rbp -> Bracket.rbp ~budget:ctx.E.budget ~r:6 fft
          | `Prbp -> Bracket.prbp ~budget:ctx.E.budget ~r:6 fft
        in
        match bracket with
        | Error e ->
            ok := false;
            Format.fprintf ppf "fft:128 %s: bracket failed: %s@." label e
        | Ok b ->
            let certs = certs_ok fft ~r:6 b in
            if not certs then ok := false;
            (* the headline claim: width at most half the old baseline *)
            if label = "rbp" && b.Bracket.width * 2 > baseline_width then
              ok := false;
            T.add_rowf t "fft:128|%s|%s|%d|%s|%s|%b" label (pp_bracket b)
              b.Bracket.width b.Bracket.lower.Lower.rule
              (Prbp.Bounds.Upper.meth_label b.Bracket.meth)
              certs;
            List.iter
              (fun (rule, bound) ->
                Format.fprintf ppf "  %s %s: %d@." label rule bound)
              b.Bracket.lower.Lower.evaluated
      in
      one `Rbp "rbp";
      one `Prbp "prbp";
      T.print ppf t;
      Format.fprintf ppf
        "(the shrink comes from the upper side: the banded Belady schedule \
         keeps two butterfly levels' components cache-resident, where the \
         row-by-row order thrashes; on the lower side no sound \
         paper-faithful rule beats the trivial source/sink count at this \
         scale — the Theorem 6.9 closed form evaluates to 62.5 at m=128, \
         r=6, far below trivial's 256 — so the attribution table records \
         trivial as the honest winner)@.";
      !ok)

let all = [ e31; e32; e33 ]

(* Bechamel micro-benchmarks of the library itself: simulator step
   rate, exact-solver throughput, generator and extraction speed —
   plus a single-shot solver throughput benchmark on harder instances
   that emits machine-readable BENCH_solver.json. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Solver throughput on hard exact instances, with the branch-and-
   bound ablation.  Each case is run once per prune setting (these are
   seconds-long searches, not micro-benchmarks) and the wall times and
   explored/pruned state counts land in BENCH_solver.json so later PRs
   can track the perf trajectory. *)

type solver_case = {
  name : string;
  game : string;
      (* "rbp" | "prbp" | "black" | "multi-rbp" | "multi-prbp" — one
         row per engine instance *)
  dag : Prbp_dag.Dag.t;
  r : int;  (* capacity; for "black" the pebble budget s *)
  p : int;  (* processors; 1 for the single-processor games *)
  budget : int;
}

let solver_cases () =
  [
    {
      name = "prbp random(seed5,7x2,din2) n=14";
      game = "prbp";
      dag =
        Prbp.Graphs.Random_dag.make ~seed:5 ~max_in_degree:2 ~layers:7
          ~width:2 ();
      r = 3;
      p = 1;
      budget = 30_000_000;
    };
    {
      name = "prbp tree(2,3) n=15";
      game = "prbp";
      dag = (Prbp.Graphs.Tree.make ~k:2 ~depth:3).Prbp.Graphs.Tree.dag;
      r = 3;
      p = 1;
      budget = 30_000_000;
    };
    {
      name = "rbp random(seed11,4x4,din3) n=16";
      game = "rbp";
      dag =
        Prbp.Graphs.Random_dag.make ~seed:11 ~max_in_degree:3 ~layers:4
          ~width:4 ();
      r = 4;
      p = 1;
      budget = 30_000_000;
    };
    {
      name = "black pyramid(6) n=28 s=8";
      game = "black";
      dag = Prbp.Graphs.Basic.pyramid 6;
      r = 8;
      p = 1;
      budget = 30_000_000;
    };
    {
      name = "multi-rbp pyramid(3) n=10 p=2";
      game = "multi-rbp";
      dag = Prbp.Graphs.Basic.pyramid 3;
      r = 3;
      p = 2;
      budget = 30_000_000;
    };
    {
      name = "multi-prbp fig1 n=10 p=2";
      game = "multi-prbp";
      dag = fst (Prbp.Graphs.Fig1.full ());
      r = 3;
      p = 2;
      budget = 30_000_000;
    };
  ]

type run_result = {
  outcome : string;  (* "optimal" | "bounded" *)
  lower : int;
  upper : int option;  (* = Some lower when optimal *)
  explored : int;
  pruned : int;
  wall_s : float;
  metrics : (string * int) list;
      (* per-run deltas of the engine's registry counters — an
         independent read of the same search the stats describe *)
}

(* The engine registers these at load time; [Metrics.counter] hands the
   same instruments back (registry dedup), so before/after values frame
   one case's footprint. *)
let engine_counters =
  [
    ("expansions", Prbp.Obs.Metrics.counter "prbp_engine_expansions_total");
    ("explored", Prbp.Obs.Metrics.counter "prbp_engine_explored_total");
    ("pruned", Prbp.Obs.Metrics.counter "prbp_engine_pruned_total");
    ( "table_resizes",
      Prbp.Obs.Metrics.counter "prbp_engine_table_resizes_total" );
  ]

let counters_snapshot () =
  List.map
    (fun (k, c) -> (k, Prbp.Obs.Metrics.Counter.value c))
    engine_counters

let counters_delta before =
  List.map2
    (fun (k, v) (_, v0) -> (k, v - v0))
    (counters_snapshot ()) before

let run_case ?(jobs = 1) c ~prune =
  (* level the heap between runs so a huge search doesn't tax the GC
     accounting of the next, smaller one *)
  Gc.compact ();
  let budget = Prbp.Solver.Budget.states c.budget in
  let summarize outcome =
    match outcome with
    | Prbp.Solver.Unsolvable _ ->
        failwith ("solver bench: no pebbling for " ^ c.name)
    | _ ->
        let stats = Prbp.Solver.stats_of outcome in
        let lower, upper = Prbp.Solver.interval outcome in
        {
          outcome = Prbp.Solver.outcome_label outcome;
          lower;
          upper;
          explored = stats.Prbp.Solver.explored;
          pruned = stats.Prbp.Solver.pruned;
          wall_s = 0.;
          metrics = [];
        }
  in
  let before = counters_snapshot () in
  let t0 = Prbp.Obs.Clock.now () in
  let res =
    match c.game with
    | "prbp" ->
        summarize
          (Prbp.Exact_prbp.solve ~budget ~prune ~jobs
             (Prbp.Prbp_game.config ~r:c.r ())
             c.dag)
    | "black" ->
        (* all-zero-cost instance: prune has nothing to cut, both runs
           measure raw reachability throughput *)
        summarize (Prbp.Black.solve ~budget ~jobs ~s:c.r c.dag)
    | "multi-rbp" ->
        summarize
          (Prbp.Exact_multi.rbp_solve ~budget ~prune ~jobs
             (Prbp.Multi.config ~p:c.p ~r:c.r ())
             c.dag)
    | "multi-prbp" ->
        summarize
          (Prbp.Exact_multi.prbp_solve ~budget ~prune ~jobs
             (Prbp.Multi.config ~p:c.p ~r:c.r ())
             c.dag)
    | _ ->
        summarize
          (Prbp.Exact_rbp.solve ~budget ~prune ~jobs
             (Prbp.Rbp.config ~r:c.r ())
             c.dag)
  in
  {
    res with
    wall_s = Prbp.Obs.Clock.elapsed_s t0;
    metrics = counters_delta before;
  }

let rate r = float_of_int r.explored /. (r.wall_s +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Bracket rows: the certified-bounds subsystem at scales the exact
   solvers cannot touch.  One row per (family, game); each bracket
   runs under a 10-second wall-clock budget and lands in
   BENCH_solver.json next to the solver cases, with its interval
   width and winning lower/upper rules for the width regression gate
   ([--check-widths]).  Closed forms attach via the DAGs' family
   tags.  Schema v10: each row also carries its convergence curve
   (how the bracket tightened over the budget), summarized in a
   "convergence" array with time-to-width stats. *)

let bracket_cases () =
  let fft = Prbp.Graphs.Fft.make ~m:128 in
  let mm = Prbp.Graphs.Matmul.make ~m1:20 ~m2:20 ~m3:20 in
  let qkt = Prbp.Graphs.Attention.qkt ~m:16 ~d:8 in
  [
    ("fft:128", `Rbp, fft.Prbp.Graphs.Fft.dag, 6);
    ("fft:128", `Prbp, fft.Prbp.Graphs.Fft.dag, 6);
    ("matmul:20:20:20", `Prbp, mm.Prbp.Graphs.Matmul.dag, 2);
    ("attention-qkt:16:8", `Prbp, qkt.Prbp.Graphs.Matmul.dag, 4);
  ]

let run_one_bracket game ~budget ~r g =
  match game with
  | `Rbp -> Prbp.Bounds.Bracket.rbp ~budget ~r g
  | `Prbp -> Prbp.Bounds.Bracket.prbp ~budget ~r g

let bracket_budget () = Prbp.Solver.Budget.v ~max_millis:10_000 ()

(* Per-bracket convergence summary: how fast the certified interval
   closed.  Times are wall-clock and wobble run to run, so the
   regression gate never compares them — they are for reading, the
   structural invariants (monotone, final point = bracket) are for
   gating. *)
let convergence_json family game r (b : Prbp.Bounds.Bracket.t) =
  let module B = Prbp.Bounds.Bracket in
  let module C = Prbp.Solver.Convergence in
  let tw w =
    match C.time_to_width b.B.curve w with
    | Some s -> Printf.sprintf "%.3f" s
    | None -> "null"
  in
  Printf.sprintf
    "{\"family\": %S, \"game\": %S, \"r\": %d, \"curve_points\": %d, \
     \"final_width\": %d, \"time_to_width\": {\"8\": %s, \"4\": %s, \"2\": \
     %s, \"1\": %s, \"0\": %s}}"
    family game r
    (List.length b.B.curve)
    b.B.width (tw 8) (tw 4) (tw 2) (tw 1) (tw 0)

let run_brackets ppf =
  Format.fprintf ppf "@.=== PERF — certified brackets at scale ===@.@.";
  let t =
    Prbp.Table.make
      ~header:
        [ "family"; "game"; "r"; "bracket"; "width"; "rule"; "method"; "time" ]
  in
  let budget = bracket_budget () in
  let rows =
    List.filter_map
      (fun (family, game, g, r) ->
        Gc.compact ();
        match run_one_bracket game ~budget ~r g with
        | Error e ->
            Format.fprintf ppf "bracket %s: %s@." family e;
            None
        | Ok b ->
            let module B = Prbp.Bounds.Bracket in
            let module L = Prbp.Bounds.Lower in
            Prbp.Table.add_rowf t "%s|%s|%d|[%d,%d]|%d|%s|%s|%.1fs" family
              (L.game_label b.B.game) r b.B.lower.L.bound b.B.upper b.B.width
              b.B.lower.L.rule
              (Prbp.Bounds.Upper.meth_label b.B.meth)
              b.B.elapsed_s;
            Some
              ( Prbp.Wire.encode_bracket (Prbp.Wire.bracket_of ~family b),
                convergence_json family (L.game_label b.B.game) r b ))
      (bracket_cases ())
  in
  Prbp.Table.print ppf t;
  List.split rows

(* ------------------------------------------------------------------ *)
(* Frontier rows: certified multiprocessor trade-off fronts.  One row
   per (family, game) at a fixed processor count — a small instance
   the exact engine settles completely (the committed baseline pins an
   exact, fully verified front) and paper-scale instances served by
   the pooled-capacity brackets.  Schema v9 lands them in a
   "frontiers" array next to the bracket rows. *)

let frontier_cases () =
  let module F = Prbp.Frontier.Frontier in
  let fig1 = fst (Prbp.Graphs.Fig1.full ()) in
  let fft = Prbp.Graphs.Fft.make ~m:64 in
  let qkt = Prbp.Graphs.Attention.qkt ~m:16 ~d:8 in
  [
    ("fig1", F.Rbp_mc, fig1, 2, [ 3; 4 ]);
    ("fig1", F.Prbp_mc, fig1, 2, [ 3; 4 ]);
    ("fft:64", F.Rbp_mc, fft.Prbp.Graphs.Fft.dag, 4, [ 4; 8 ]);
    ("attention-qkt:16:8", F.Prbp_mc, qkt.Prbp.Graphs.Matmul.dag, 4, [ 4; 8 ]);
  ]

let frontier_stats (f : Prbp.Frontier.Frontier.t) =
  let module F = Prbp.Frontier.Frontier in
  let points_n = List.length f.F.points in
  let open_n = List.length (F.open_points f) in
  (* the same summed-width metric encode_frontier emits as front_width *)
  let width =
    List.fold_left
      (fun acc (pt : F.point) ->
        match pt.F.comm_upper with
        | Some u -> acc + (u - pt.F.comm_lower)
        | None -> acc)
      0 f.F.points
  in
  (points_n, open_n, width)

let run_frontiers ppf =
  let module F = Prbp.Frontier.Frontier in
  Format.fprintf ppf "@.=== PERF — certified frontiers ===@.@.";
  let t =
    Prbp.Table.make
      ~header:[ "family"; "game"; "points"; "open"; "width"; "time" ]
  in
  let budget = bracket_budget () in
  let rows =
    List.map
      (fun (family, game, g, p, rs) ->
        Gc.compact ();
        let f = F.sweep ~budget game ~p ~rs g in
        let points_n, open_n, width = frontier_stats f in
        Prbp.Table.add_rowf t "%s|%s|%d|%d|%d|%.1fs" family
          (F.game_label game ~p) points_n open_n width f.F.elapsed_s;
        Prbp.Wire.encode_frontier (Prbp.Wire.frontier_of ~family ~dag:g f))
      (frontier_cases ())
  in
  Prbp.Table.print ppf t;
  rows

(* [--check-widths]: re-run the bracket cases under the standard bench
   budget and gate on the interval widths committed in
   BENCH_solver.json.  Returns the process exit code: 1 when any
   committed case's width regressed (or a case with a baseline failed
   to bracket at all), 0 otherwise.  Schema v9 extends the gate to the
   frontier rows: settled point counts must not shrink, open intervals
   must not multiply, summed widths must not grow past the slack.
   Schema v10 adds the structural convergence-curve gate: every fresh
   bracket's curve must be monotone and must end exactly at the
   certified bracket — no timing comparisons, so no CI flakes. *)
let check_frontier_widths ppf =
  let module R = Prbp.Regression in
  let module F = Prbp.Frontier.Frontier in
  let baseline =
    try R.frontier_rows_of_file "BENCH_solver.json" with Sys_error _ -> []
  in
  if baseline = [] then begin
    Format.fprintf ppf
      "check-widths: no committed frontier baseline — brackets only@.";
    0
  end
  else begin
    let budget = bracket_budget () in
    let current =
      List.map
        (fun (family, game, g, p, rs) ->
          Gc.compact ();
          let f = F.sweep ~budget game ~p ~rs g in
          let points_n, open_n, front_width = frontier_stats f in
          {
            R.f_family = family;
            f_game = F.game_label game ~p;
            points_n;
            open_n;
            front_width;
          })
        (frontier_cases ())
    in
    let verdicts = R.check_frontiers ~baseline current in
    List.iter (fun v -> Format.fprintf ppf "%a@." R.pp_frontier_verdict v)
      verdicts;
    if R.frontier_regressed verdicts then 1 else 0
  end

let check_widths ppf =
  let module R = Prbp.Regression in
  let baseline =
    try R.rows_of_file "BENCH_solver.json"
    with Sys_error e ->
      Format.fprintf ppf "check-widths: cannot read BENCH_solver.json: %s@." e;
      []
  in
  if baseline = [] then begin
    Format.fprintf ppf
      "check-widths: no committed bracket baseline — nothing to gate@.";
    0
  end
  else begin
    Format.fprintf ppf "@.=== PERF — interval-width regression gate ===@.@.";
    let budget = bracket_budget () in
    let failed = ref false in
    let curve_checks = ref [] in
    let current =
      List.filter_map
        (fun (family, game, g, r) ->
          Gc.compact ();
          match run_one_bracket game ~budget ~r g with
          | Error e ->
              Format.fprintf ppf "bracket %s failed: %s@." family e;
              failed := true;
              None
          | Ok b ->
              let module B = Prbp.Bounds.Bracket in
              let game_label = Prbp.Bounds.Lower.game_label b.B.game in
              curve_checks :=
                R.check_curve ~family ~game:game_label ~r
                  ~lower:b.B.lower.Prbp.Bounds.Lower.bound ~upper:b.B.upper
                  b.B.curve
                :: !curve_checks;
              Some
                {
                  R.family;
                  game = game_label;
                  r;
                  interval_width = b.B.width;
                  lower_rule = b.B.lower.Prbp.Bounds.Lower.rule;
                  upper_rule = Prbp.Bounds.Upper.meth_label b.B.meth;
                })
        (bracket_cases ())
    in
    let verdicts = R.check ~baseline current in
    List.iter (fun v -> Format.fprintf ppf "%a@." R.pp_verdict v) verdicts;
    Format.fprintf ppf "@.=== PERF — convergence-curve gate (v10) ===@.@.";
    let curve_verdicts = List.rev !curve_checks in
    List.iter
      (fun v -> Format.fprintf ppf "%a@." R.pp_curve_verdict v)
      curve_verdicts;
    let bracket_code =
      if R.regressed verdicts || R.curves_regressed curve_verdicts || !failed
      then 1
      else 0
    in
    max bracket_code (check_frontier_widths ppf)
  end

let show_interval r =
  match r.upper with
  | Some u when u = r.lower -> string_of_int r.lower
  | Some u -> Printf.sprintf "[%d,%d]" r.lower u
  | None -> Printf.sprintf "[%d,?]" r.lower

(* Only meaningful on multiple cores, so gated on [-j N > 1]: a
   frontier whose 10^8-state budget takes minutes sequentially.  It
   truncates at the budget with a certified interval — the measurement
   is throughput, not the (unreachable) optimum. *)
let huge_case () =
  {
    name = "huge rbp random(seed7,6x5,din3) n=30 1e8 states";
    game = "rbp";
    dag =
      Prbp.Graphs.Random_dag.make ~seed:7 ~max_in_degree:3 ~layers:6
        ~width:5 ();
    r = 4;
    p = 1;
    budget = 100_000_000;
  }

let run_solver ?(jobs = 1) ppf =
  (* the per-case metric deltas in the JSON need a live registry; the
     engine publishes once per solve, far from the hot loop *)
  Prbp.Obs.Metrics.set_enabled true;
  Format.fprintf ppf "@.=== PERF — exact-solver throughput ===@.@.";
  let t =
    Prbp.Table.make
      ~header:
        [ "case"; "r"; "opt/interval"; "time (prune)"; "states (prune)";
          "kst/s"; "time (off)"; "states (off)"; "pruned"; "shrink" ]
  in
  let rows =
    List.map
      (fun c ->
        let on = run_case c ~prune:true in
        let off = run_case c ~prune:false in
        Prbp.Table.add_rowf t "%s|%d|%s|%.2fs|%d|%.0f|%.2fs|%d|%d|%.1fx"
          c.name c.r (show_interval on) on.wall_s on.explored
          (rate on /. 1e3) off.wall_s off.explored on.pruned
          (float_of_int off.explored /. float_of_int on.explored);
        (c, on, off))
      (solver_cases ())
  in
  Prbp.Table.print ppf t;
  (* Parallel re-runs of the same cases at [-j N], against the j=1
     prune-on wall times above. *)
  let par_rows =
    if jobs <= 1 then []
    else begin
      Format.fprintf ppf "@.=== PERF — parallel solver (jobs=%d) ===@.@."
        jobs;
      let t =
        Prbp.Table.make
          ~header:
            [ "case"; "time (j=1)"; Printf.sprintf "time (j=%d)" jobs;
              "speedup"; "states" ]
      in
      let prs =
        List.map
          (fun (c, on, _) ->
            let par = run_case ~jobs c ~prune:true in
            let speedup = on.wall_s /. (par.wall_s +. 1e-9) in
            Prbp.Table.add_rowf t "%s|%.2fs|%.2fs|%.2fx|%d" c.name on.wall_s
              par.wall_s speedup par.explored;
            (c.name, (par, speedup)))
          rows
      in
      Prbp.Table.print ppf t;
      prs
    end
  in
  let huge =
    if jobs <= 1 then None
    else begin
      let c = huge_case () in
      Format.fprintf ppf "@.huge case (jobs=%d): %s ...@." jobs c.name;
      let res = run_case ~jobs c ~prune:true in
      Format.fprintf ppf "  %s in %.1fs, %d states (%.0f kst/s)@."
        (show_interval res) res.wall_s res.explored (rate res /. 1e3);
      Some (c, res)
    end
  in
  let bracket_rows, convergence_rows = run_brackets ppf in
  let frontier_rows = run_frontiers ppf in
  let buf = Buffer.create 1024 in
  (* single-sourced from Wire so the daemon's /healthz, the regression
     gate, and this writer can never disagree on the schema version *)
  Printf.bprintf buf "{\n  \"schema\": %S,\n" Prbp.Wire.bench_schema;
  (* filled in by the [--serve] load generator (Exp_serve), which
     patches this single line in place *)
  Buffer.add_string buf "  \"serve\": null,\n";
  Printf.bprintf buf "  \"jobs\": %d,\n  \"host_cores\": %d,\n" jobs
    (Domain.recommended_domain_count ());
  Buffer.add_string buf "  \"cases\": [\n";
  let num_opt = function Some v -> string_of_int v | None -> "null" in
  let metrics_json m =
    "{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v) m)
    ^ "}"
  in
  let par_json name =
    match List.assoc_opt name par_rows with
    | None -> "null"
    | Some (par, speedup) ->
        Printf.sprintf
          "{\"jobs\": %d, \"wall_s\": %.3f, \"explored\": %d, \
           \"speedup_vs_j1\": %.3f}"
          jobs par.wall_s par.explored speedup
  in
  List.iteri
    (fun i (c, on, off) ->
      let width =
        match on.upper with Some u -> Some (u - on.lower) | None -> None
      in
      Printf.bprintf buf
        "    {\"name\": %S, \"game\": %S, \"nodes\": %d, \"edges\": %d, \
         \"r\": %d, \"p\": %d,\n\
        \     \"outcome\": %S, \"lower\": %d, \"upper\": %s, \
         \"interval_width\": %s,\n\
        \     \"prune\": {\"wall_s\": %.3f, \"explored\": %d, \"pruned\": \
         %d, \"explored_per_s\": %.0f},\n\
        \     \"no_prune\": {\"wall_s\": %.3f, \"explored\": %d, \
         \"explored_per_s\": %.0f},\n\
        \     \"par\": %s,\n\
        \     \"metrics\": {\"prune\": %s, \"no_prune\": %s}}%s\n"
        c.name c.game
        (Prbp_dag.Dag.n_nodes c.dag)
        (Prbp_dag.Dag.n_edges c.dag)
        c.r c.p on.outcome on.lower (num_opt on.upper) (num_opt width)
        on.wall_s on.explored on.pruned (rate on) off.wall_s off.explored
        (rate off) (par_json c.name)
        (metrics_json on.metrics)
        (metrics_json off.metrics)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Buffer.add_string buf "  ],\n";
  (match huge with
  | None -> Buffer.add_string buf "  \"huge\": null,\n"
  | Some (c, res) ->
      Printf.bprintf buf
        "  \"huge\": {\"name\": %S, \"jobs\": %d, \"budget_states\": %d, \
         \"outcome\": %S, \"lower\": %d, \"upper\": %s, \"explored\": %d, \
         \"wall_s\": %.3f, \"explored_per_s\": %.0f},\n"
        c.name jobs c.budget res.outcome res.lower (num_opt res.upper)
        res.explored res.wall_s (rate res));
  Buffer.add_string buf "  \"brackets\": [\n";
  List.iteri
    (fun i row ->
      Printf.bprintf buf "    %s%s\n" row
        (if i = List.length bracket_rows - 1 then "" else ","))
    bracket_rows;
  Buffer.add_string buf "  ],\n  \"convergence\": [\n";
  List.iteri
    (fun i row ->
      Printf.bprintf buf "    %s%s\n" row
        (if i = List.length convergence_rows - 1 then "" else ","))
    convergence_rows;
  Buffer.add_string buf "  ],\n  \"frontiers\": [\n";
  List.iteri
    (fun i row ->
      Printf.bprintf buf "    %s%s\n" row
        (if i = List.length frontier_rows - 1 then "" else ","))
    frontier_rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_solver.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  Format.fprintf ppf "@.wrote BENCH_solver.json@."

let fig1 = lazy (Prbp.Graphs.Fig1.full ())

let fig1_rbp_moves =
  lazy (Prbp.Strategies.fig1_rbp (snd (Lazy.force fig1)))

let fig1_prbp_moves =
  lazy (Prbp.Strategies.fig1_prbp (snd (Lazy.force fig1)))

let matvec8 = lazy (Prbp.Graphs.Matvec.make ~m:8)

let matvec8_moves =
  lazy (Prbp.Strategies.matvec_prbp (Lazy.force matvec8))

let tree26 = lazy (Prbp.Graphs.Tree.make ~k:2 ~depth:6)

let tree26_moves = lazy (Prbp.Strategies.tree_prbp (Lazy.force tree26))

let random240 =
  lazy (Prbp.Graphs.Random_dag.make ~seed:3 ~layers:12 ~width:20 ())

let tests =
  [
    Test.make ~name:"simulate: RBP fig1 strategy"
      (Staged.stage (fun () ->
           let g, _ = Lazy.force fig1 in
           Prbp.Rbp.run_exn (Prbp.Rbp.config ~r:4 ()) g
             (Lazy.force fig1_rbp_moves)));
    Test.make ~name:"simulate: PRBP fig1 strategy"
      (Staged.stage (fun () ->
           let g, _ = Lazy.force fig1 in
           Prbp.Prbp_game.run_exn
             (Prbp.Prbp_game.config ~r:4 ())
             g
             (Lazy.force fig1_prbp_moves)));
    Test.make ~name:"simulate: PRBP matvec(8) stream (208 I/Os)"
      (Staged.stage (fun () ->
           let mv = Lazy.force matvec8 in
           Prbp.Prbp_game.run_exn
             (Prbp.Prbp_game.config ~r:11 ())
             mv.Prbp.Graphs.Matvec.dag
             (Lazy.force matvec8_moves)));
    Test.make ~name:"exact: OPT_RBP fig1 (r=4)"
      (Staged.stage (fun () ->
           let g, _ = Lazy.force fig1 in
           Solve_util.rbp_opt (Prbp.Rbp.config ~r:4 ()) g));
    Test.make ~name:"exact: OPT_PRBP fig1 (r=4)"
      (Staged.stage (fun () ->
           let g, _ = Lazy.force fig1 in
           Solve_util.prbp_opt (Prbp.Prbp_game.config ~r:4 ()) g));
    Test.make ~name:"generate: FFT(1024) DAG (11264 nodes)"
      (Staged.stage (fun () -> Prbp.Graphs.Fft.make ~m:1024));
    Test.make ~name:"generate: matmul 16^3 DAG (4864 nodes)"
      (Staged.stage (fun () -> Prbp.Graphs.Matmul.make ~m1:16 ~m2:16 ~m3:16));
    Test.make ~name:"heuristic: PRBP Belady on 240-node DAG (r=6)"
      (Staged.stage (fun () ->
           Prbp.Heuristic.prbp ~r:6 (Lazy.force random240)));
    Test.make ~name:"strategy: blocked FFT(256) moves"
      (Staged.stage (fun () ->
           Prbp.Strategies.fft_blocked ~r:10 (Prbp.Graphs.Fft.make ~m:256)));
    Test.make ~name:"extract: edge partition of tree(2,6) trace"
      (Staged.stage (fun () ->
           let t = Lazy.force tree26 in
           Prbp.Extract.edge_partition_of_prbp ~r:3 t.Prbp.Graphs.Tree.dag
             (Lazy.force tree26_moves)));
    Test.make ~name:"greedy scheduler: matvec(6) (120 nodes)"
      (Staged.stage
         (let mv = Prbp.Graphs.Matvec.make ~m:6 in
          fun () ->
            Prbp.Heuristic.prbp_greedy ~r:9 mv.Prbp.Graphs.Matvec.dag));
    Test.make ~name:"black: pebbling number of pyramid(3)"
      (Staged.stage
         (let g = Prbp.Graphs.Basic.pyramid 3 in
          fun () -> Prbp.Black.number g));
    Test.make ~name:"minpart: MIN_edge of fig1 (S=8)"
      (Staged.stage
         (let g, _ = Prbp.Graphs.Fig1.full () in
          fun () -> Prbp.Minpart.edge_partition g ~s:8));
    Test.make ~name:"segment: greedy S-partition of fft(32) (S=8)"
      (Staged.stage
         (let g = (Prbp.Graphs.Fft.make ~m:32).Prbp.Graphs.Fft.dag in
          fun () -> Prbp.Bounds.Segment.greedy g ~s:8));
    Test.make ~name:"flow: min dominator in matmul 6^3 (300 nodes)"
      (Staged.stage
         (let mm = Prbp.Graphs.Matmul.make ~m1:6 ~m2:6 ~m3:6 in
          let g = mm.Prbp.Graphs.Matmul.dag in
          let sinks =
            Prbp.Bitset.of_list (Prbp.Dag.n_nodes g) (Prbp.Dag.sinks g)
          in
          fun () -> Prbp.Dominator.min_dominator_size g sinks));
  ]

let run ppf =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let grouped = Test.make_grouped ~name:"prbp" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) clock [] in
  let t = Prbp.Table.make ~header:[ "benchmark"; "time/run" ] in
  List.iter
    (fun (name, v) ->
      let est =
        match Analyze.OLS.estimates v with
        | Some [ e ] ->
            if e > 1e9 then Printf.sprintf "%.2f s" (e /. 1e9)
            else if e > 1e6 then Printf.sprintf "%.2f ms" (e /. 1e6)
            else if e > 1e3 then Printf.sprintf "%.2f us" (e /. 1e3)
            else Printf.sprintf "%.0f ns" e
        | _ -> "n/a"
      in
      Prbp.Table.add_row t [ name; est ])
    (List.sort compare rows);
  Format.fprintf ppf "@.=== PERF — Bechamel micro-benchmarks ===@.@.";
  Prbp.Table.print ppf t

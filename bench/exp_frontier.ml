(* Experiments E34–E35: certified multiprocessor trade-off frontiers
   (lib/frontier).

   E34 computes exact fronts on small instances at p = 2, re-verifies
   every point independently, checks certified-dominance soundness,
   and confirms the p = 1 front collapses to the single-processor
   optimum; E35 produces bracketed fronts at paper scale under a
   wall-clock budget, where exact multiprocessor search is out of
   reach. *)

module Dag = Prbp.Dag
module E = Prbp.Experiment
module T = Prbp.Table
module F = Prbp.Frontier.Frontier
module Multi = Prbp.Multi
module Multi_bounds = Prbp.Bounds.Multi_bounds

let pp_itv lo = function
  | Some hi when hi = lo -> string_of_int lo
  | Some hi -> Printf.sprintf "[%d,%d]" lo hi
  | None -> Printf.sprintf ">=%d" lo

(* Re-verify one frontier point independently of the sweep: its
   witness must replay through the Prbp_pebble.Multi rule engine at
   exactly the claimed communication upper bound. *)
let point_certified g (pt : F.point) =
  match (pt.F.witness, pt.F.comm_upper) with
  | Some w, Some cu -> (
      let cfg = Multi.config ~p:pt.F.p ~r:pt.F.r () in
      match w with
      | Multi_bounds.Rbp_mc_moves mv -> Multi.R.check cfg g mv = Ok cu
      | Multi_bounds.Prbp_mc_moves mv -> Multi.P.check cfg g mv = Ok cu)
  | _ -> false

(* No surviving front point may certifiably dominate another survivor:
   if it did, marking was unsound. *)
let front_sound f =
  let front = F.front f in
  not
    (List.exists
       (fun (a : F.point) ->
         List.exists
           (fun (b : F.point) ->
             a.F.r < b.F.r
             &&
             match (a.F.comm_upper, a.F.time_upper) with
             | Some cu, Some tu ->
                 cu <= b.F.comm_lower && tu <= b.F.time_lower
             | _ -> false)
           front)
       front)

let e34 =
  E.make ~id:"E34"
    ~paper:"Section 8.1 multiprocessor extension: exact trade-off fronts"
    ~claim:
      "On small instances the p = 2 frontier sweep settles every point \
       exactly, each witness re-verifies through the multiprocessor rule \
       engine at its claimed communication cost, no surviving front point \
       certifiably dominates another, and the p = 1 front collapses to \
       the single-processor optimum of the Section 3 games"
    (fun ppf (ctx : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "DAG"; "game"; "r"; "comm"; "time"; "status"; "certified";
              "p1 = OPT" ]
      in
      let ok = ref true in
      let one name game g rs =
        let fgame = match game with `Rbp -> F.Rbp_mc | `Prbp -> F.Prbp_mc in
        let f2 = F.sweep ~budget:ctx.E.budget fgame ~p:2 ~rs g in
        if f2.F.exhausted || not (front_sound f2) then ok := false;
        let f1 = F.sweep ~budget:ctx.E.budget fgame ~p:1 ~rs g in
        List.iter
          (fun (pt : F.point) ->
            let certified = pt.F.settled && point_certified g pt in
            (* the single-processor game at the same r must agree with
               the p = 1 sweep: OPT_1 specializes the MC games *)
            let p1_opt =
              match
                List.find_opt (fun (q : F.point) -> q.F.r = pt.F.r) f1.F.points
              with
              | None -> false
              | Some q -> (
                  q.F.settled
                  &&
                  let opt =
                    match game with
                    | `Rbp ->
                        Solve_util.probe
                          (Prbp.Exact_rbp.solve ~budget:ctx.E.budget
                             (Prbp.Rbp.config ~r:pt.F.r ()) g)
                    | `Prbp ->
                        Solve_util.probe
                          (Prbp.Exact_prbp.solve ~budget:ctx.E.budget
                             (Prbp.Prbp_game.config ~r:pt.F.r ()) g)
                  in
                  match opt with
                  | Solve_util.Cost c -> q.F.comm_lower = c
                  | _ -> false)
            in
            if not (certified && p1_opt) then ok := false;
            T.add_rowf t "%s|%s|%d|%s|%s|%s|%b|%b" name
              (F.game_label fgame ~p:2)
              pt.F.r
              (pp_itv pt.F.comm_lower pt.F.comm_upper)
              (pp_itv pt.F.time_lower pt.F.time_upper)
              (match pt.F.status with
              | `Exact -> "exact"
              | `Bracketed -> "bracketed")
              certified p1_opt)
          f2.F.points
      in
      let both name g rs =
        one name `Rbp g rs;
        one name `Prbp g rs
      in
      both "diamond" (Prbp.Graphs.Basic.diamond ()) [ 2; 3; 4 ];
      both "fig1" (fst (Prbp.Graphs.Fig1.full ())) [ 3; 4 ];
      both "pyramid(3)" (Prbp.Graphs.Basic.pyramid 3) [ 2; 3 ];
      both "fan_in(4)" (Prbp.Graphs.Basic.fan_in 4) [ 2; 5 ];
      T.print ppf t;
      Format.fprintf ppf
        "(every frontier point above was re-verified here by replaying its \
         witness through the multiprocessor rule engine, independently of \
         the sweep; the p = 1 column cross-checks the frontier against the \
         single-processor exact solvers, which the MC games specialize to)@.";
      !ok)

let e35 =
  E.make ~id:"E35"
    ~paper:"Section 6.3 families at experiment scale, multiprocessor"
    ~claim:
      "Under a 10-second budget the frontier sweep produces certified \
       bracketed fronts at paper scale — FFT(64), matmul 8^3 and attention \
       QK^T (16,8) at p = 4 — with finite communication intervals at every \
       swept capacity and every carried witness re-verified"
    ~budget:(Prbp.Solver.Budget.v ~max_millis:10_000 ())
    (fun ppf (ctx : E.ctx) ->
      let t =
        T.make
          ~header:
            [ "family"; "game"; "r"; "comm"; "time"; "source"; "verified" ]
      in
      let ok = ref true in
      let one family game g ~p rs =
        let fgame = match game with `Rbp -> F.Rbp_mc | `Prbp -> F.Prbp_mc in
        let f = F.sweep ~budget:ctx.E.budget fgame ~p ~rs g in
        if f.F.points = [] then ok := false;
        List.iter
          (fun (pt : F.point) ->
            (* finite, ordered, and independently re-verified *)
            (match pt.F.comm_upper with
            | None -> ok := false
            | Some cu ->
                if not (pt.F.comm_lower <= cu && pt.F.verified) then
                  ok := false);
            if pt.F.witness <> None && not (point_certified g pt) then
              ok := false;
            T.add_rowf t "%s|%s|%d|%s|%s|%s|%b" family
              (F.game_label fgame ~p) pt.F.r
              (pp_itv pt.F.comm_lower pt.F.comm_upper)
              (pp_itv pt.F.time_lower pt.F.time_upper)
              pt.F.source pt.F.verified)
          f.F.points
      in
      let fft = (Prbp.Graphs.Fft.make ~m:64).Prbp.Graphs.Fft.dag in
      one "fft:64" `Rbp fft ~p:4 [ 4; 8 ];
      let mm = Prbp.Graphs.Matmul.make ~m1:8 ~m2:8 ~m3:8 in
      one "matmul:8:8:8" `Prbp mm.Prbp.Graphs.Matmul.dag ~p:4 [ 2; 4 ];
      let qkt = Prbp.Graphs.Attention.qkt ~m:16 ~d:8 in
      one "attention-qkt:16:8" `Prbp qkt.Prbp.Graphs.Matmul.dag ~p:4 [ 4; 8 ];
      T.print ppf t;
      Format.fprintf ppf
        "(past the exact engine's reach every point comes from the \
         pooled-capacity reduction: a single-processor lower bound at \
         capacity p*r is sound for p processors of capacity r, and a \
         single-processor strategy lifted to processor 0 is a valid upper \
         witness — both directions re-verified before being believed)@.";
      !ok)

let all = [ e34; e35 ]

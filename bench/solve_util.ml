(* Outcome plumbing shared by the experiment drivers: the experiments
   speak in plain costs, the solvers in {!Prbp.Solver.outcome}. *)

module S = Prbp.Solver

(* Optimal cost, or fail loudly — for instances the experiment knows
   fit comfortably inside the budget. *)
let cost_exn what = function
  | S.Optimal o -> o.S.cost
  | S.Bounded b ->
      failwith
        (Printf.sprintf "%s: budget exhausted at [%d, %s]" what b.S.lower
           (match b.S.upper with Some u -> string_of_int u | None -> "?"))
  | S.Unsolvable _ -> failwith (what ^ ": no valid pebbling exists")

let rbp_opt ?budget ?telemetry ?jobs cfg g =
  cost_exn "Exact_rbp" (Prbp.Exact_rbp.solve ?budget ?telemetry ?jobs cfg g)

let prbp_opt ?budget ?telemetry ?jobs cfg g =
  cost_exn "Exact_prbp" (Prbp.Exact_prbp.solve ?budget ?telemetry ?jobs cfg g)

(* Three-way probe for surveys that must distinguish "no pebbling
   exists" from "the budget ran out with this certified interval". *)
type probe = Cost of int | Infeasible | Truncated of int * int option

let probe = function
  | S.Optimal o -> Cost o.S.cost
  | S.Unsolvable _ -> Infeasible
  | S.Bounded b -> Truncated (b.S.lower, b.S.upper)

(* Every truncated probe must still carry a sound, non-trivial
   interval: 1 <= lower and lower <= upper when an incumbent exists. *)
let interval_sane = function
  | Truncated (lo, hi) -> (
      lo >= 1 && match hi with Some h -> lo <= h | None -> true)
  | Cost _ | Infeasible -> true

let pp_probe ppf = function
  | Cost c -> Format.pp_print_int ppf c
  | Infeasible -> Format.pp_print_string ppf "-"
  | Truncated (lo, hi) ->
      Format.fprintf ppf "[%d,%s]" lo
        (match hi with Some h -> string_of_int h | None -> "?")

(* Cost and explored-state count of a finished solve (ablations). *)
let cost_explored = function
  | S.Optimal o -> Some (o.S.cost, o.S.stats.S.explored)
  | S.Bounded _ | S.Unsolvable _ -> None
